// Package ghd computes generalized hypertree decompositions of query
// hypergraphs (§III-A of the paper). ADJ restricts the plan search space to
// one optimal hypertree T: its hypernodes (bags) are the only candidate
// pre-computed relations, and valid Leapfrog attribute orders must follow a
// traversal order of T's nodes.
//
// Decompositions here are edge partitions: every atom of the query belongs
// to exactly one bag (matching the paper, where a bag is "a subset of
// hyperedges … computed by joining the corresponding relations"). A
// partition is a valid decomposition when each group is connected and the
// bag hypergraph is α-acyclic (GYO-reducible), which yields a join tree
// with the running-intersection property. Among valid decompositions we
// pick the one minimizing the maximum fractional edge cover of any bag —
// the fhw criterion that bounds each pre-computed relation by
// |Rmax|^fhw (AGM).
package ghd

import (
	"fmt"
	"sort"
	"strings"

	"adj/internal/hypergraph"
	"adj/internal/lp"
)

// Bag is a hypernode of the decomposition: a group of query atoms.
type Bag struct {
	ID int
	// Atoms are the indexes of the query atoms joined by this bag.
	Atoms []int
	// Vertices is the sorted union of the atoms' attributes.
	Vertices []string
	// Width is the fractional edge cover number ρ*(Vertices) with respect to
	// all query edges; |output| ≤ |Rmax|^Width by AGM.
	Width float64
}

// IsBase reports whether the bag is a single original relation (nothing to
// pre-compute).
func (b Bag) IsBase() bool { return len(b.Atoms) == 1 }

// Decomposition is a hypertree T = (bags, join tree).
type Decomposition struct {
	Query hypergraph.Query
	Bags  []Bag
	// Adj is the join-tree adjacency list over bag IDs.
	Adj [][]int
	// MaxWidth = max over bags of Width (the fhw achieved by T).
	MaxWidth float64
}

// String renders the decomposition compactly.
func (d *Decomposition) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GHD of %s (fhw=%.2f):", d.Query.Name, d.MaxWidth)
	for _, b := range d.Bags {
		names := make([]string, len(b.Atoms))
		for i, ai := range b.Atoms {
			names[i] = d.Query.Atoms[ai].Name
		}
		fmt.Fprintf(&sb, "\n  v%d{%s} attrs=%v width=%.2f adj=%v",
			b.ID, strings.Join(names, "⋈"), b.Vertices, b.Width, d.Adj[b.ID])
	}
	return sb.String()
}

// Options tunes the enumeration.
type Options struct {
	// MaxBagAtoms caps the number of atoms per bag (0 = no cap). The paper's
	// bags are "as small as possible"; capping keeps pre-computed relations
	// near-binary and bounds enumeration on large queries.
	MaxBagAtoms int
}

// Decompose enumerates edge-partition decompositions of q's hypergraph and
// returns one minimizing (max bag width, then sum of widths, then fewer
// non-base bags, then more bags).
func Decompose(q hypergraph.Query, opt Options) (*Decomposition, error) {
	h := q.Hypergraph()
	m := len(h.Edges)
	if m == 0 {
		return nil, fmt.Errorf("ghd: query %s has no atoms", q.Name)
	}
	widthCache := make(map[string]float64)
	bagWidth := func(verts []string) float64 {
		key := strings.Join(verts, "\x00")
		if w, ok := widthCache[key]; ok {
			return w
		}
		w := FractionalEdgeCover(verts, h.Edges)
		widthCache[key] = w
		return w
	}

	var best *Decomposition
	bestKey := scoreKey{maxW: 1e18}

	// Enumerate set partitions via restricted growth strings, pruning
	// disconnected groups eagerly.
	assign := make([]int, m)
	consider := func(numGroups int) {
		groups := make([][]int, numGroups)
		for e, g := range assign {
			groups[g] = append(groups[g], e)
		}
		if opt.MaxBagAtoms > 0 {
			for _, g := range groups {
				if len(g) > opt.MaxBagAtoms {
					return
				}
			}
		}
		for _, g := range groups {
			if !h.ConnectedEdges(g) {
				return
			}
		}
		bags := make([]Bag, numGroups)
		for i, g := range groups {
			verts := h.VerticesOf(g)
			bags[i] = Bag{ID: i, Atoms: g, Vertices: verts, Width: bagWidth(verts)}
		}
		adj, ok := joinTree(bags)
		if !ok {
			return
		}
		d := &Decomposition{Query: q, Bags: bags, Adj: adj}
		for _, b := range bags {
			if b.Width > d.MaxWidth {
				d.MaxWidth = b.Width
			}
		}
		k := scoreOf(d)
		if k.less(bestKey) {
			bestKey = k
			best = d
		}
	}
	var rec func(i, maxG int)
	rec = func(i, maxG int) {
		if i == m {
			consider(maxG)
			return
		}
		for g := 0; g <= maxG && g <= i; g++ {
			assign[i] = g
			next := maxG
			if g == maxG {
				next = maxG + 1
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	if best == nil {
		return nil, fmt.Errorf("ghd: no valid decomposition for %s", q.Name)
	}
	normalize(best)
	return best, nil
}

type scoreKey struct {
	maxW    float64
	sumW    float64
	nonBase int
	negBags int
}

func scoreOf(d *Decomposition) scoreKey {
	k := scoreKey{maxW: d.MaxWidth}
	for _, b := range d.Bags {
		k.sumW += b.Width
		if !b.IsBase() {
			k.nonBase++
		}
	}
	k.negBags = -len(d.Bags)
	return k
}

func (a scoreKey) less(b scoreKey) bool {
	const tol = 1e-9
	if a.maxW < b.maxW-tol {
		return true
	}
	if a.maxW > b.maxW+tol {
		return false
	}
	if a.sumW < b.sumW-tol {
		return true
	}
	if a.sumW > b.sumW+tol {
		return false
	}
	if a.nonBase != b.nonBase {
		return a.nonBase < b.nonBase
	}
	return a.negBags < b.negBags
}

// normalize sorts bags deterministically (by first atom index) and remaps
// IDs and adjacency so equal inputs give identical decompositions.
func normalize(d *Decomposition) {
	order := make([]int, len(d.Bags))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return d.Bags[order[x]].Atoms[0] < d.Bags[order[y]].Atoms[0]
	})
	remap := make([]int, len(d.Bags))
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	newBags := make([]Bag, len(d.Bags))
	newAdj := make([][]int, len(d.Bags))
	for newID, oldID := range order {
		b := d.Bags[oldID]
		b.ID = newID
		newBags[newID] = b
		for _, nb := range d.Adj[oldID] {
			newAdj[newID] = append(newAdj[newID], remap[nb])
		}
		sort.Ints(newAdj[newID])
	}
	d.Bags = newBags
	d.Adj = newAdj
}

// joinTree runs GYO reduction over the bag vertex sets. It returns the
// join-tree adjacency and whether the bag hypergraph is α-acyclic.
func joinTree(bags []Bag) ([][]int, bool) {
	n := len(bags)
	adj := make([][]int, n)
	if n == 1 {
		return adj, true
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 1 {
		removed := false
		for i := 0; i < n && remaining > 1; i++ {
			if !alive[i] {
				continue
			}
			// S = vertices of bag i shared with any other alive bag.
			shared := make(map[string]bool)
			for _, v := range bags[i].Vertices {
				for j := 0; j < n; j++ {
					if j == i || !alive[j] {
						continue
					}
					if containsStr(bags[j].Vertices, v) {
						shared[v] = true
						break
					}
				}
			}
			// Find witness bag w ⊇ S.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if coversSet(bags[j].Vertices, shared) {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
					alive[i] = false
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, false // irreducible: cyclic
		}
	}
	return adj, true
}

func containsStr(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func coversSet(sorted []string, set map[string]bool) bool {
	for v := range set {
		if !containsStr(sorted, v) {
			return false
		}
	}
	return true
}

// FractionalEdgeCover computes ρ*(verts): the minimum total weight
// assignment to edges such that every vertex in verts is covered with
// weight ≥ 1. Solved exactly with the simplex solver in package lp.
func FractionalEdgeCover(verts []string, edges [][]string) float64 {
	if len(verts) == 0 {
		return 0
	}
	n := len(edges)
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	var a [][]float64
	var b []float64
	var op []lp.ConstraintOp
	for _, v := range verts {
		row := make([]float64, n)
		any := false
		for j, e := range edges {
			for _, x := range e {
				if x == v {
					row[j] = 1
					any = true
					break
				}
			}
		}
		if !any {
			// Vertex not coverable: infinite width. Callers only pass bag
			// vertices, which are always covered; treat as a huge penalty.
			return 1e18
		}
		a = append(a, row)
		b = append(b, 1)
		op = append(op, lp.GE)
	}
	sol, err := lp.Solve(lp.Problem{C: c, A: a, B: b, Op: op})
	if err != nil {
		return 1e18
	}
	return sol.Value
}
