package ghd

import (
	"math"
	"sort"
	"strings"
	"testing"

	"adj/internal/hypergraph"
)

func TestPaperExampleDecomposition(t *testing.T) {
	// §III-A Example 3: Q(a,b,c,d,e) with R1(a,b,c), R2(a,d), R3(c,d),
	// R4(b,e), R5(c,e) decomposes into bags {R1}, {R2⋈R3}, {R4⋈R5}.
	q := hypergraph.PaperExample()
	d, err := Decompose(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bags) != 3 {
		t.Fatalf("bags=%d want 3\n%s", len(d.Bags), d)
	}
	var sigs []string
	for _, b := range d.Bags {
		var names []string
		for _, ai := range b.Atoms {
			names = append(names, q.Atoms[ai].Name)
		}
		sort.Strings(names)
		sigs = append(sigs, strings.Join(names, "+"))
	}
	sort.Strings(sigs)
	want := []string{"R1", "R2+R3", "R4+R5"}
	for i := range want {
		if sigs[i] != want[i] {
			t.Fatalf("bags=%v want %v", sigs, want)
		}
	}
	// Bag {a,c,d} (and {b,c,e}) has fractional edge cover 1.5: the three
	// pairwise constraints force weight ≥ 1/2 on three edges.
	if math.Abs(d.MaxWidth-1.5) > 1e-6 {
		t.Fatalf("paper example fhw=%v want 1.5", d.MaxWidth)
	}
}

func TestTriangleDecomposition(t *testing.T) {
	// The triangle is cyclic: the only valid edge-partition is a single bag,
	// with fractional cover 1.5.
	d, err := Decompose(hypergraph.Q1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bags) != 1 {
		t.Fatalf("triangle bags=%d want 1\n%s", len(d.Bags), d)
	}
	if math.Abs(d.MaxWidth-1.5) > 1e-6 {
		t.Fatalf("triangle width=%v want 1.5", d.MaxWidth)
	}
}

func TestAcyclicPathDecomposition(t *testing.T) {
	// Q9 = path a-b-c-d is acyclic: singleton bags, width 1.
	d, err := Decompose(hypergraph.Q9(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.MaxWidth-1.0) > 1e-6 {
		t.Fatalf("path width=%v want 1", d.MaxWidth)
	}
	for _, b := range d.Bags {
		if !b.IsBase() {
			t.Fatalf("acyclic query should use base bags only\n%s", d)
		}
	}
}

func TestDecompositionInvariants(t *testing.T) {
	for _, q := range hypergraph.AllQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			d, err := Decompose(q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, q, d)
		})
	}
}

func checkInvariants(t *testing.T, q hypergraph.Query, d *Decomposition) {
	t.Helper()
	// Every atom in exactly one bag.
	seen := make(map[int]int)
	for _, b := range d.Bags {
		for _, ai := range b.Atoms {
			seen[ai]++
		}
	}
	if len(seen) != len(q.Atoms) {
		t.Fatalf("atoms covered=%d want %d", len(seen), len(q.Atoms))
	}
	for ai, c := range seen {
		if c != 1 {
			t.Fatalf("atom %d in %d bags", ai, c)
		}
	}
	// Tree: connected with n-1 edges.
	n := len(d.Bags)
	edges := 0
	for _, a := range d.Adj {
		edges += len(a)
	}
	edges /= 2
	if n > 1 && edges != n-1 {
		t.Fatalf("join tree edges=%d want %d", edges, n-1)
	}
	if !connected(d) {
		t.Fatal("join tree not connected")
	}
	// Running intersection: for every vertex, bags containing it form a
	// connected subtree.
	for _, v := range q.Attrs() {
		var with []int
		for _, b := range d.Bags {
			if containsStr(b.Vertices, v) {
				with = append(with, b.ID)
			}
		}
		if !subtreeConnected(d, with) {
			t.Fatalf("vertex %q: bags %v not connected in tree", v, with)
		}
	}
	// Widths are >= 1 for non-empty bags.
	for _, b := range d.Bags {
		if b.Width < 1-1e-9 {
			t.Fatalf("bag %d width=%v < 1", b.ID, b.Width)
		}
	}
}

func connected(d *Decomposition) bool {
	if len(d.Bags) == 0 {
		return true
	}
	vis := make([]bool, len(d.Bags))
	stack := []int{0}
	vis[0] = true
	cnt := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range d.Adj[u] {
			if !vis[w] {
				vis[w] = true
				cnt++
				stack = append(stack, w)
			}
		}
	}
	return cnt == len(d.Bags)
}

func subtreeConnected(d *Decomposition, nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	vis := map[int]bool{nodes[0]: true}
	stack := []int{nodes[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range d.Adj[u] {
			if in[w] && !vis[w] {
				vis[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(vis) == len(nodes)
}

func TestFractionalEdgeCoverValues(t *testing.T) {
	edges := [][]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	if w := FractionalEdgeCover([]string{"a", "b", "c"}, edges); math.Abs(w-1.5) > 1e-6 {
		t.Fatalf("triangle=%v", w)
	}
	if w := FractionalEdgeCover([]string{"a", "b"}, edges); math.Abs(w-1.0) > 1e-6 {
		t.Fatalf("single edge=%v", w)
	}
	if w := FractionalEdgeCover(nil, edges); w != 0 {
		t.Fatalf("empty=%v", w)
	}
	// 4-clique: cover number 2 (perfect matching of 2 edges).
	k4 := [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}, {"a", "c"}, {"b", "d"}}
	if w := FractionalEdgeCover([]string{"a", "b", "c", "d"}, k4); math.Abs(w-2.0) > 1e-6 {
		t.Fatalf("K4=%v want 2", w)
	}
	if w := FractionalEdgeCover([]string{"a"}, [][]string{{"b"}}); w < 1e17 {
		t.Fatalf("uncoverable vertex must give huge width, got %v", w)
	}
}

func TestK5Cover(t *testing.T) {
	q := hypergraph.Q3() // 5-clique
	h := q.Hypergraph()
	w := FractionalEdgeCover(h.Vertices, h.Edges)
	if math.Abs(w-2.5) > 1e-6 {
		t.Fatalf("K5 fractional cover=%v want 2.5", w)
	}
}

func TestTraversalOrders(t *testing.T) {
	q := hypergraph.PaperExample()
	d, err := Decompose(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orders := d.TraversalOrders()
	// Path of 3 bags has 4 prefix-connected orders:
	// (mid first: 2) + (ends first: 1 each) = v0v1v2, v1v0v2, v1v2v0, v2v1v0.
	if len(orders) != 4 {
		t.Fatalf("traversal orders=%d want 4: %v", len(orders), orders)
	}
	for _, o := range orders {
		for i := 1; i < len(o); i++ {
			if !d.adjacentToAny(o[i], o[:i]) {
				t.Fatalf("order %v has disconnected prefix", o)
			}
		}
	}
}

func TestValidAttrOrders(t *testing.T) {
	q := hypergraph.PaperExample()
	d, err := Decompose(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	valid := d.ValidAttrOrders()
	if len(valid) == 0 {
		t.Fatal("no valid orders")
	}
	// Paper's example: a ≺ b ≺ c ≺ d ≺ e is valid, a ≺ b ≺ e ≺ d ≺ c invalid.
	if !d.IsValidAttrOrder([]string{"a", "b", "c", "d", "e"}) {
		t.Errorf("a,b,c,d,e should be valid")
	}
	if d.IsValidAttrOrder([]string{"a", "b", "e", "d", "c"}) {
		t.Errorf("a,b,e,d,c should be invalid")
	}
	// All valid orders are permutations of the attrs.
	attrs := q.Attrs()
	for _, o := range valid {
		if len(o) != len(attrs) {
			t.Fatalf("order %v wrong length", o)
		}
	}
	// Valid ⊂ all orders, strictly for this query.
	all := AllAttrOrders(attrs)
	if len(valid) >= len(all) {
		t.Fatalf("valid=%d should be < all=%d", len(valid), len(all))
	}
}

func TestSingleBagAllOrdersValid(t *testing.T) {
	d, err := Decompose(hypergraph.Q1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	valid := d.ValidAttrOrders()
	all := AllAttrOrders(hypergraph.Q1().Attrs())
	if len(valid) != len(all) {
		t.Fatalf("single bag: valid=%d all=%d should match", len(valid), len(all))
	}
}

func TestMaxBagAtomsCap(t *testing.T) {
	q := hypergraph.Q6()
	d, err := Decompose(q, Options{MaxBagAtoms: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Bags {
		if len(b.Atoms) > 3 {
			t.Fatalf("bag %v exceeds cap", b.Atoms)
		}
	}
}

func TestBagOfAttr(t *testing.T) {
	q := hypergraph.PaperExample()
	d, _ := Decompose(q, Options{})
	orders := d.TraversalOrders()
	for _, o := range orders {
		groups := d.NewAttrsAt(o)
		for i, grp := range groups {
			for _, a := range grp {
				if got := d.BagOfAttr(o, a); got != i {
					t.Fatalf("BagOfAttr(%v,%s)=%d want %d", o, a, got, i)
				}
			}
		}
	}
}
