// Package yannakakis implements Yannakakis' algorithm for acyclic joins
// (VLDB'81): a full semijoin reduction pass down and up a join tree
// followed by joins along the tree, with total cost linear in input +
// output. §VI of the paper positions it (via EmptyHeaded) as the standard
// way to exploit acyclicity; ADJ uses it as a fast path when the query's
// GHD has fhw = 1 — i.e. every bag is a single relation and the query is
// α-acyclic — where worst-case-optimal machinery buys nothing.
package yannakakis

import (
	"fmt"

	"adj/internal/ghd"
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// IsAcyclic reports whether the decomposition certifies an α-acyclic query
// evaluable by this package: every bag is a single base relation.
func IsAcyclic(d *ghd.Decomposition) bool {
	for _, b := range d.Bags {
		if !b.IsBase() {
			return false
		}
	}
	return true
}

// Join evaluates an acyclic query over bound relations using the
// decomposition's join tree. It returns the full join result with set
// semantics. The three classic phases:
//
//  1. bottom-up semijoin: children reduce parents,
//  2. top-down semijoin: parents reduce children,
//  3. bottom-up join along the tree.
//
// After phase 2 every remaining tuple participates in at least one output
// tuple, so phase 3 never builds dead intermediates.
func Join(q hypergraph.Query, rels []*relation.Relation, d *ghd.Decomposition) (*relation.Relation, error) {
	if !IsAcyclic(d) {
		return nil, fmt.Errorf("yannakakis: query %s is not acyclic (fhw=%.2f)", q.Name, d.MaxWidth)
	}
	n := len(d.Bags)
	if n == 0 {
		return relation.New("empty"), nil
	}
	// Working copies, one per bag (bag i holds atom d.Bags[i].Atoms[0]).
	work := make([]*relation.Relation, n)
	for i, b := range d.Bags {
		work[i] = rels[b.Atoms[0]].Clone()
	}
	if n == 1 {
		return work[0].SortDedup().ProjectMulti(q.Attrs()...).SortDedup(), nil
	}

	// Root the tree at bag 0 and compute a BFS order.
	parent := make([]int, n)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	parent[0] = -1
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range d.Adj[u] {
			if !seen[v] {
				seen[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("yannakakis: join tree disconnected")
	}

	// Phase 1: bottom-up (reverse BFS): parent ⋉ child.
	for i := n - 1; i >= 1; i-- {
		u := order[i]
		p := parent[u]
		on := relation.SharedAttrs(work[p], work[u])
		if len(on) > 0 {
			work[p] = work[p].Semijoin(work[u], on)
		}
	}
	// Phase 2: top-down: child ⋉ parent.
	for i := 1; i < n; i++ {
		u := order[i]
		p := parent[u]
		on := relation.SharedAttrs(work[u], work[p])
		if len(on) > 0 {
			work[u] = work[u].Semijoin(work[p], on)
		}
	}
	// Phase 3: join bottom-up into the root.
	for i := n - 1; i >= 1; i-- {
		u := order[i]
		p := parent[u]
		work[p] = relation.HashJoin(work[p], work[u])
	}
	out := work[order[0]]
	return out.ProjectMulti(q.Attrs()...).SortDedup(), nil
}

// Count evaluates an acyclic query and returns only the result cardinality.
func Count(q hypergraph.Query, rels []*relation.Relation, d *ghd.Decomposition) (int64, error) {
	out, err := Join(q, rels, d)
	if err != nil {
		return 0, err
	}
	return int64(out.Len()), nil
}

// SemijoinReduce runs only phases 1–2 and returns the reduced relations in
// atom order: every surviving tuple joins with at least one tuple of every
// neighbouring relation. Engines use it as a pre-filter even for cyclic
// queries (reducing over any spanning join tree of the GHD is sound — it
// only removes tuples that cannot contribute).
func SemijoinReduce(rels []*relation.Relation, d *ghd.Decomposition) []*relation.Relation {
	n := len(d.Bags)
	out := make([]*relation.Relation, len(rels))
	copy(out, rels)
	if n < 2 {
		return out
	}
	// Reduce bag representatives pairwise along tree edges (two passes).
	repr := make([]int, n) // bag -> atom index
	for i, b := range d.Bags {
		repr[i] = b.Atoms[0]
	}
	pass := func(edges [][2]int) {
		for _, e := range edges {
			a, b := out[repr[e[0]]], out[repr[e[1]]]
			on := relation.SharedAttrs(a, b)
			if len(on) > 0 {
				out[repr[e[0]]] = a.Semijoin(b, on)
			}
		}
	}
	var edges [][2]int
	for u := range d.Adj {
		for _, v := range d.Adj[u] {
			edges = append(edges, [2]int{u, v})
		}
	}
	pass(edges)
	// Reverse pass.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	pass(edges)
	return out
}
