package yannakakis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adj/internal/ghd"
	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/testutil"
)

func decompose(t testing.TB, q hypergraph.Query) *ghd.Decomposition {
	t.Helper()
	d, err := ghd.Decompose(q, ghd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIsAcyclic(t *testing.T) {
	if !IsAcyclic(decompose(t, hypergraph.Q9())) {
		t.Fatal("path query must be acyclic")
	}
	if IsAcyclic(decompose(t, hypergraph.Q1())) {
		t.Fatal("triangle must be cyclic")
	}
}

func TestJoinRejectsCyclic(t *testing.T) {
	q := hypergraph.Q1()
	rng := rand.New(rand.NewSource(1))
	rels := q.BindGraph(testutil.RandEdges(rng, "E", 50, 10))
	if _, err := Join(q, rels, decompose(t, q)); err == nil {
		t.Fatal("expected error for cyclic query")
	}
}

func TestJoinPathQuery(t *testing.T) {
	q := hypergraph.Q9() // a-b-c-d path
	rng := rand.New(rand.NewSource(2))
	rels := q.BindGraph(testutil.RandEdges(rng, "E", 200, 20))
	got, err := Join(q, rels, decompose(t, q))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NaiveJoin(rels, q.Attrs())
	if got.Len() != want.Len() {
		t.Fatalf("got %d want %d", got.Len(), want.Len())
	}
}

// Yannakakis must agree with the naive oracle on random acyclic queries.
func TestJoinMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandQueryInstance(rng, 4, 4, 25, 6)
		d, err := ghd.Decompose(q, ghd.Options{})
		if err != nil {
			return false
		}
		if !IsAcyclic(d) {
			return true // only acyclic instances apply
		}
		got, err := Join(q, rels, d)
		if err != nil {
			return false
		}
		want := relation.NaiveJoin(rels, q.Attrs())
		return got.Len() == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSingleRelation(t *testing.T) {
	q := hypergraph.Query{Name: "Q", Atoms: []hypergraph.Atom{{Name: "R", Attrs: []string{"a", "b"}}}}
	r := relation.FromTuples("R", []string{"a", "b"}, [][]relation.Value{{1, 2}, {1, 2}, {3, 4}})
	got, err := Join(q, []*relation.Relation{r}, decompose(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("single relation set semantics: %d", got.Len())
	}
}

func TestCount(t *testing.T) {
	q := hypergraph.Q7()
	rng := rand.New(rand.NewSource(3))
	rels := q.BindGraph(testutil.RandEdges(rng, "E", 150, 15))
	n, err := Count(q, rels, decompose(t, q))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NaiveJoin(rels, q.Attrs()).Len()
	if int(n) != want {
		t.Fatalf("count=%d want %d", n, want)
	}
}

// Semijoin reduction must never change the final join result, acyclic or
// cyclic.
func TestSemijoinReducePreservesResult(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandQueryInstance(rng, 4, 4, 25, 6)
		d, err := ghd.Decompose(q, ghd.Options{})
		if err != nil {
			return false
		}
		reduced := SemijoinReduce(rels, d)
		a := relation.NaiveJoin(rels, q.Attrs())
		b := relation.NaiveJoin(reduced, q.Attrs())
		if a.Len() != b.Len() {
			return false
		}
		// Reduction must not grow any relation.
		for i := range rels {
			if reduced[i].Len() > rels[i].Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSemijoinReduceActuallyReduces(t *testing.T) {
	// A path query with a dangling tuple that can never join.
	r1 := relation.FromTuples("R1", []string{"a", "b"}, [][]relation.Value{{1, 2}, {9, 99}})
	r2 := relation.FromTuples("R2", []string{"b", "c"}, [][]relation.Value{{2, 3}})
	q := hypergraph.Query{Name: "Q", Atoms: []hypergraph.Atom{
		{Name: "R1", Attrs: []string{"a", "b"}},
		{Name: "R2", Attrs: []string{"b", "c"}},
	}}
	d := decompose(t, q)
	reduced := SemijoinReduce([]*relation.Relation{r1, r2}, d)
	if reduced[0].Len() != 1 {
		t.Fatalf("dangling tuple not removed: %v", reduced[0])
	}
}
