package dataset

import (
	"math/rand"

	"adj/internal/relation"
)

// Generate builds the graph described by spec. Output is sorted, has no
// self-loops or duplicate edges, contains (close to) spec.Edges unique
// edges, and is deterministic in spec.Seed.
func Generate(spec Spec) *relation.Relation {
	rng := rand.New(rand.NewSource(spec.Seed))
	var edges *relation.Relation
	switch spec.Kind {
	case PrefAttach:
		edges = genPrefAttach(rng, spec)
	case Uniform:
		edges = genUniform(rng, spec)
	case Community:
		edges = genCommunity(rng, spec)
	default:
		panic("dataset: unknown generator kind")
	}
	edges.Name = spec.Name
	return edges.Sort()
}

// nodesOf interprets NodesPerEdge as average degree: nodes = edges/degree.
func nodesOf(spec Spec) int {
	npe := spec.NodesPerEdge
	if npe <= 0 {
		npe = 10
	}
	nodes := int(float64(spec.Edges) / npe)
	if nodes < 16 {
		nodes = 16
	}
	return nodes
}

// edgeSet accumulates unique directed edges up to a target count.
type edgeSet struct {
	rel    *relation.Relation
	seen   map[[2]relation.Value]bool
	target int
}

func newEdgeSet(name string, target int) *edgeSet {
	return &edgeSet{
		rel:    relation.NewWithCapacity(name, target, "src", "dst"),
		seen:   make(map[[2]relation.Value]bool, target),
		target: target,
	}
}

// add inserts (u,v) if new and not a self-loop; reports acceptance.
func (s *edgeSet) add(u, v relation.Value) bool {
	if u == v {
		return false
	}
	k := [2]relation.Value{u, v}
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.rel.Append(u, v)
	return true
}

func (s *edgeSet) full() bool { return s.rel.Len() >= s.target }

// attempts bounds generation so dense small graphs terminate.
func (s *edgeSet) maxAttempts() int { return 30 * s.target }

// genPrefAttach grows a directed graph with preferential attachment: each
// endpoint is drawn from a degree-proportional pool with probability
// Hubs/(1+Hubs), uniformly otherwise. High Hubs yields the heavy-tailed
// hubs that drive complex-join skew. After each accepted edge (u,v), a
// Holme–Kim triad-formation step closes a triangle with probability
// Triadic, and the reverse edge is inserted with probability Reciprocal —
// together reproducing the clustering and reciprocity that give real
// web/social graphs their cyclic-pattern counts.
func genPrefAttach(rng *rand.Rand, spec Spec) *relation.Relation {
	nodes := nodesOf(spec)
	es := newEdgeSet(spec.Name, spec.Edges)
	pool := make([]relation.Value, 0, 2*spec.Edges+nodes)
	for v := 0; v < nodes; v++ {
		pool = append(pool, relation.Value(v))
	}
	adj := make(map[relation.Value][]relation.Value, nodes)
	pPool := spec.Hubs / (1 + spec.Hubs)
	draw := func() relation.Value {
		if rng.Float64() < pPool {
			return pool[rng.Intn(len(pool))]
		}
		return relation.Value(rng.Intn(nodes))
	}
	insert := func(u, v relation.Value) bool {
		if !es.add(u, v) {
			return false
		}
		pool = append(pool, u, v)
		adj[u] = append(adj[u], v)
		return true
	}
	for att := 0; !es.full() && att < es.maxAttempts(); att++ {
		u := draw()
		v := draw()
		if !insert(u, v) {
			continue
		}
		if rng.Float64() < spec.Reciprocal {
			insert(v, u)
		}
		if !es.full() && rng.Float64() < spec.Triadic {
			// Close a triangle: connect u to a random out-neighbor of v,
			// matching Q1's orientation (a→b, b→c, a→c).
			if nb := adj[v]; len(nb) > 0 {
				insert(u, nb[rng.Intn(len(nb))])
			}
		}
	}
	return es.rel
}

// genUniform is an Erdős–Rényi style G(n, m) graph.
func genUniform(rng *rand.Rand, spec Spec) *relation.Relation {
	nodes := nodesOf(spec)
	es := newEdgeSet(spec.Name, spec.Edges)
	for att := 0; !es.full() && att < es.maxAttempts(); att++ {
		es.add(relation.Value(rng.Intn(nodes)), relation.Value(rng.Intn(nodes)))
	}
	return es.rel
}

// genCommunity partitions nodes into communities, generates preferential
// attachment inside each, and adds ~5% random cross-community edges
// (LiveJournal/Orkut-like block structure).
func genCommunity(rng *rand.Rand, spec Spec) *relation.Relation {
	nodes := nodesOf(spec)
	k := spec.Communities
	if k <= 0 {
		k = 16
	}
	if k > nodes/4 {
		k = nodes / 4
	}
	if k < 1 {
		k = 1
	}
	es := newEdgeSet(spec.Name, spec.Edges)
	perComm := nodes / k
	pools := make([][]relation.Value, k)
	for ci := 0; ci < k; ci++ {
		base := ci * perComm
		for v := 0; v < perComm; v++ {
			pools[ci] = append(pools[ci], relation.Value(base+v))
		}
	}
	adj := make(map[relation.Value][]relation.Value)
	insert := func(ci int, u, v relation.Value) bool {
		if !es.add(u, v) {
			return false
		}
		pools[ci] = append(pools[ci], u, v)
		adj[u] = append(adj[u], v)
		return true
	}
	for att := 0; !es.full() && att < es.maxAttempts(); att++ {
		if att%20 == 0 {
			// Cross-community uniform edge (~5%).
			es.add(relation.Value(rng.Intn(nodes)), relation.Value(rng.Intn(nodes)))
			continue
		}
		ci := rng.Intn(k)
		pool := pools[ci]
		u := pool[rng.Intn(len(pool))]
		var v relation.Value
		if rng.Intn(2) == 0 {
			v = pool[rng.Intn(len(pool))]
		} else {
			v = relation.Value(ci*perComm + rng.Intn(perComm))
		}
		if !insert(ci, u, v) {
			continue
		}
		if rng.Float64() < spec.Reciprocal {
			insert(ci, v, u)
		}
		if !es.full() && rng.Float64() < spec.Triadic {
			if nb := adj[v]; len(nb) > 0 {
				insert(ci, u, nb[rng.Intn(len(nb))])
			}
		}
	}
	return es.rel
}
