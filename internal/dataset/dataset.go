// Package dataset provides the evaluation datasets. The paper (Table I)
// uses six SNAP/LAW graphs — WB (web-BerkStan), AS (as-Skitter), WT
// (wiki-Talk), LJ (com-LiveJournal), EN (en-wiki2013), OK (com-Orkut) —
// from 13.2M to 234.4M edges. Those downloads are not available offline, so
// this package generates deterministic synthetic analogues scaled ~1000×
// down that preserve the two properties complex-join cost depends on:
// heavy-tailed degree distributions (skew) and the relative size ordering
// WB < AS < WT < LJ < EN < OK. A SNAP edge-list loader is included for
// users with the real files (see DESIGN.md, substitutions).
package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"adj/internal/relation"
)

// Kind selects a generator family.
type Kind int

// Generator families.
const (
	// PrefAttach grows a graph by preferential attachment (heavy-tailed
	// degrees, like web/social graphs).
	PrefAttach Kind = iota
	// Uniform is an Erdős–Rényi style uniform random graph.
	Uniform
	// Community overlays preferential attachment inside k communities with
	// sparse random cross links (LiveJournal/Orkut-like structure).
	Community
)

// Spec describes a synthetic graph.
type Spec struct {
	Name string
	Kind Kind
	// Edges is the approximate target edge count (exact count can be
	// slightly lower after dedup).
	Edges int
	// NodesPerEdge controls density: nodes ≈ Edges / NodesPerEdge.
	NodesPerEdge float64
	// Hubs tunes skew for PrefAttach (higher = more mass on hubs).
	Hubs float64
	// Triadic is the probability of closing a triangle after each accepted
	// edge (Holme–Kim style): real web/social graphs have high clustering,
	// which is what makes the cyclic queries Q1–Q6 produce results.
	Triadic float64
	// Reciprocal is the probability of also inserting the reverse edge.
	Reciprocal float64
	// Communities is the community count for the Community kind.
	Communities int
	Seed        int64
}

// Named dataset table: scaled analogues of the paper's Table I at scale 1.
// Edge counts are the paper's ×10⁻³; kinds/density/skew are chosen per the
// source graph's character.
// Densities (NodesPerEdge = average out-degree at scale 1) follow the real
// graphs' relative ordering — web-BerkStan ~11, as-Skitter ~7, wiki-Talk ~2
// (huge hubs), LiveJournal ~17, enwiki ~24, Orkut ~38 — compressed ~2× so
// that pattern counts stay tractable at the 1000×-reduced edge counts
// (pattern counts grow like degree^k; see SpecOf for the per-scale rule).
var specs = map[string]Spec{
	"WB": {Name: "WB", Kind: PrefAttach, Edges: 13200, NodesPerEdge: 5.5, Hubs: 1.2, Triadic: 0.4, Reciprocal: 0.25, Seed: 101},
	"AS": {Name: "AS", Kind: PrefAttach, Edges: 22100, NodesPerEdge: 3.5, Hubs: 1.6, Triadic: 0.35, Reciprocal: 0.5, Seed: 102},
	"WT": {Name: "WT", Kind: PrefAttach, Edges: 50900, NodesPerEdge: 2.0, Hubs: 2.6, Triadic: 0.2, Reciprocal: 0.15, Seed: 103},
	"LJ": {Name: "LJ", Kind: Community, Edges: 69400, NodesPerEdge: 8.5, Triadic: 0.3, Reciprocal: 0.4, Communities: 24, Seed: 104},
	"EN": {Name: "EN", Kind: PrefAttach, Edges: 183900, NodesPerEdge: 12.0, Hubs: 1.2, Triadic: 0.35, Reciprocal: 0.3, Seed: 105},
	"OK": {Name: "OK", Kind: Community, Edges: 234400, NodesPerEdge: 19.0, Triadic: 0.3, Reciprocal: 0.5, Communities: 16, Seed: 106},
}

// Names returns the dataset names in the paper's (size) order.
func Names() []string { return []string{"WB", "AS", "WT", "LJ", "EN", "OK"} }

// SpecOf returns the spec of a named dataset scaled by scale (scale 1 =
// paper ×10⁻³). It panics on unknown names — these are fixed benchmark
// identifiers.
//
// Average degree scales sub-linearly (∝ scale^0.3, floor 2): shrinking a
// graph while holding degree fixed would turn it into a near-clique whose
// pattern counts explode combinatorially, destroying the very shapes the
// benchmarks measure. Sub-linear degree compression keeps the relative
// density ordering (OK densest … WT sparsest-with-hubs) at every scale.
func SpecOf(name string, scale float64) Spec {
	s, ok := specs[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown dataset %q (want one of %v)", name, Names()))
	}
	if scale <= 0 {
		scale = 1
	}
	s.Edges = int(float64(s.Edges) * scale)
	if s.Edges < 100 {
		s.Edges = 100
	}
	s.NodesPerEdge *= math.Pow(scale, 0.3)
	if s.NodesPerEdge < 2 {
		s.NodesPerEdge = 2
	}
	return s
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*relation.Relation{}
)

// Load returns the named dataset at the given scale as a deduplicated,
// sorted binary relation (src, dst). Results are memoized; callers must
// not mutate them.
func Load(name string, scale float64) *relation.Relation {
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[key]; ok {
		return r
	}
	r := Generate(SpecOf(name, scale))
	cache[key] = r
	return r
}

// Stats summarizes a graph relation for Table I reporting.
type Stats struct {
	Name      string
	Edges     int
	Nodes     int
	MaxOut    int
	MaxIn     int
	AvgDegree float64
	SizeMB    float64
}

// StatsOf computes graph statistics.
func StatsOf(name string, r *relation.Relation) Stats {
	out := make(map[relation.Value]int)
	in := make(map[relation.Value]int)
	nodes := make(map[relation.Value]bool)
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		out[t[0]]++
		in[t[1]]++
		nodes[t[0]] = true
		nodes[t[1]] = true
	}
	s := Stats{Name: name, Edges: r.Len(), Nodes: len(nodes)}
	for _, d := range out {
		if d > s.MaxOut {
			s.MaxOut = d
		}
	}
	for _, d := range in {
		if d > s.MaxIn {
			s.MaxIn = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Nodes)
	}
	s.SizeMB = float64(r.SizeBytes()) / 1e6
	return s
}

// DegreeHistogram returns sorted (degree, count) pairs of out-degrees; the
// generator tests use it to verify heavy tails.
func DegreeHistogram(r *relation.Relation) [][2]int {
	deg := make(map[relation.Value]int)
	for i, n := 0, r.Len(); i < n; i++ {
		deg[r.Tuple(i)[0]]++
	}
	hist := make(map[int]int)
	for _, d := range deg {
		hist[d]++
	}
	var out [][2]int
	for d, c := range hist {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
