package dataset

import (
	"bytes"
	"strings"
	"testing"

	"adj/internal/relation"
)

func TestNamedDatasetsGenerate(t *testing.T) {
	var prev int
	for _, name := range Names() {
		r := Load(name, 0.1)
		if r.Len() == 0 {
			t.Fatalf("%s: empty", name)
		}
		if r.Arity() != 2 {
			t.Fatalf("%s: arity %d", name, r.Arity())
		}
		// Size ordering must match the paper: WB < AS < WT < LJ < EN < OK.
		if r.Len() <= prev {
			t.Fatalf("%s: size %d not larger than previous %d", name, r.Len(), prev)
		}
		prev = r.Len()
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(SpecOf("LJ", 0.05))
	b := Generate(SpecOf("LJ", 0.05))
	if !a.Equal(b) {
		t.Fatal("generation must be deterministic")
	}
}

func TestLoadMemoizes(t *testing.T) {
	a := Load("WB", 0.05)
	b := Load("WB", 0.05)
	if a != b {
		t.Fatal("Load should memoize")
	}
}

func TestNoSelfLoopsNoDuplicates(t *testing.T) {
	for _, name := range Names() {
		r := Load(name, 0.05)
		seen := make(map[[2]relation.Value]bool, r.Len())
		for i := 0; i < r.Len(); i++ {
			tu := r.Tuple(i)
			if tu[0] == tu[1] {
				t.Fatalf("%s: self loop %v", name, tu)
			}
			k := [2]relation.Value{tu[0], tu[1]}
			if seen[k] {
				t.Fatalf("%s: duplicate edge %v", name, tu)
			}
			seen[k] = true
		}
	}
}

func TestHeavyTail(t *testing.T) {
	// Preferential attachment graphs must have a hub with degree far above
	// average — the skew complex-join hardness depends on.
	r := Load("WT", 0.25)
	st := StatsOf("WT", r)
	if float64(st.MaxOut) < 5*st.AvgDegree {
		t.Fatalf("WT max degree %d not heavy-tailed (avg %.1f)", st.MaxOut, st.AvgDegree)
	}
}

func TestUniformNotHeavyTailed(t *testing.T) {
	r := Generate(Spec{Name: "U", Kind: Uniform, Edges: 20000, NodesPerEdge: 10, Seed: 9})
	st := StatsOf("U", r)
	if float64(st.MaxOut) > 8*st.AvgDegree {
		t.Fatalf("uniform graph unexpectedly skewed: max %d avg %.1f", st.MaxOut, st.AvgDegree)
	}
}

func TestCommunityGraphConnectsAcross(t *testing.T) {
	r := Generate(Spec{Name: "C", Kind: Community, Edges: 10000, NodesPerEdge: 10, Communities: 4, Seed: 3})
	if r.Len() < 5000 {
		t.Fatalf("too few edges: %d", r.Len())
	}
}

func TestSpecOfScaling(t *testing.T) {
	s1 := SpecOf("LJ", 1)
	s2 := SpecOf("LJ", 0.5)
	if s2.Edges >= s1.Edges {
		t.Fatalf("scaling failed: %d vs %d", s2.Edges, s1.Edges)
	}
	if got := SpecOf("LJ", 0); got.Edges != s1.Edges {
		t.Fatal("scale 0 should default to 1")
	}
}

func TestSpecOfUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpecOf("NOPE", 1)
}

func TestSNAPRoundtrip(t *testing.T) {
	r := Load("WB", 0.05)
	var buf bytes.Buffer
	if err := WriteSNAP(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSNAP(&buf, "WB")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r.Renamed("WB")) {
		t.Fatalf("roundtrip mismatch: %d vs %d edges", back.Len(), r.Len())
	}
}

func TestSNAPParsing(t *testing.T) {
	in := "# comment\n1\t2\n3 4\n\n% another comment\n2\t1\n"
	r, err := ReadSNAP(strings.NewReader(in), "g")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("edges=%d want 3", r.Len())
	}
}

func TestSNAPErrors(t *testing.T) {
	if _, err := ReadSNAP(strings.NewReader("1\n"), "g"); err == nil {
		t.Fatal("expected error for one-field line")
	}
	if _, err := ReadSNAP(strings.NewReader("a b\n"), "g"); err == nil {
		t.Fatal("expected error for non-numeric")
	}
	// Self loops silently dropped.
	r, err := ReadSNAP(strings.NewReader("1 1\n1 2\n"), "g")
	if err != nil || r.Len() != 1 {
		t.Fatalf("self loop handling: %v len=%d", err, r.Len())
	}
}

func TestStatsOf(t *testing.T) {
	r := relation.FromTuples("g", []string{"src", "dst"}, [][]relation.Value{
		{1, 2}, {1, 3}, {2, 3},
	})
	st := StatsOf("g", r)
	if st.Edges != 3 || st.Nodes != 3 || st.MaxOut != 2 || st.MaxIn != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestDegreeHistogram(t *testing.T) {
	r := relation.FromTuples("g", []string{"src", "dst"}, [][]relation.Value{
		{1, 2}, {1, 3}, {2, 3},
	})
	h := DegreeHistogram(r)
	// Node 1 has out-degree 2, node 2 has 1: hist = [(1,1),(2,1)].
	if len(h) != 2 || h[0] != [2]int{1, 1} || h[1] != [2]int{2, 1} {
		t.Fatalf("hist=%v", h)
	}
}
