package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adj/internal/relation"
)

// ReadSNAP parses a SNAP-format edge list: one "src dst" (or tab-separated)
// pair per line, '#' comment lines ignored. This is the format of every
// graph in the paper's Table I, so users with the real downloads can run
// the benchmarks on them (cmd/adj -dataset path/to/file.txt).
func ReadSNAP(r io.Reader, name string) (*relation.Relation, error) {
	out := relation.New(name, "src", "dst")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("snap: line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: %w", lineNo, err)
		}
		if u == v {
			continue // drop self loops, as the paper's preprocessing does
		}
		out.Append(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return out.SortDedup(), nil
}

// LoadSNAPFile reads a SNAP edge list from disk.
func LoadSNAPFile(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return ReadSNAP(f, name)
}

// WriteSNAP writes a binary relation as a SNAP edge list.
func WriteSNAP(w io.Writer, r *relation.Relation) error {
	if r.Arity() != 2 {
		return fmt.Errorf("snap: relation %q is not binary", r.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d edges\n", r.Name, r.Len())
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		fmt.Fprintf(bw, "%d\t%d\n", t[0], t[1])
	}
	return bw.Flush()
}
