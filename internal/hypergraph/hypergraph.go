// Package hypergraph models natural-join queries as hypergraphs (§II of the
// paper): vertices are query attributes, hyperedges are atom schemas. It
// also carries the paper's benchmark query catalog Q1–Q11 (Fig. 7).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"adj/internal/relation"
)

// Atom is one relation occurrence in a join query, e.g. R1(a,b).
type Atom struct {
	Name  string
	Attrs []string
}

func (a Atom) String() string {
	return fmt.Sprintf("%s(%s)", a.Name, strings.Join(a.Attrs, ","))
}

// Query is a natural join query Q :- R1(...) ⋈ ... ⋈ Rm(...).
type Query struct {
	Name  string
	Atoms []Atom
}

// Attrs returns the query attributes attrs(Q) in order of first appearance.
func (q Query) Attrs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Attrs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// AtomsWith returns the indexes of atoms whose schema contains attribute v.
func (q Query) AtomsWith(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, x := range a.Attrs {
			if x == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// String renders the query in the paper's notation.
func (q Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s :- %s", q.Name, strings.Join(parts, " ⋈ "))
}

// Hypergraph returns the hypergraph representation H = (V, E).
func (q Query) Hypergraph() *Hypergraph {
	h := &Hypergraph{Vertices: q.Attrs()}
	for _, a := range q.Atoms {
		h.Edges = append(h.Edges, append([]string(nil), a.Attrs...))
	}
	return h
}

// Hypergraph is H = (V, E): V the attributes, E the atom schemas.
type Hypergraph struct {
	Vertices []string
	Edges    [][]string
}

// EdgesWith returns the indexes of hyperedges containing vertex v.
func (h *Hypergraph) EdgesWith(v string) []int {
	var out []int
	for i, e := range h.Edges {
		for _, x := range e {
			if x == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// ConnectedEdges reports whether the sub-hypergraph induced by the edge
// index set is connected (shares vertices transitively). Single edges and
// empty sets are connected by convention.
func (h *Hypergraph) ConnectedEdges(edgeIdx []int) bool {
	if len(edgeIdx) <= 1 {
		return true
	}
	visited := make(map[int]bool, len(edgeIdx))
	inSet := make(map[int]bool, len(edgeIdx))
	for _, i := range edgeIdx {
		inSet[i] = true
	}
	stack := []int{edgeIdx[0]}
	visited[edgeIdx[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, other := range edgeIdx {
			if visited[other] {
				continue
			}
			if shareVertex(h.Edges[cur], h.Edges[other]) {
				visited[other] = true
				stack = append(stack, other)
			}
		}
	}
	return len(visited) == len(edgeIdx)
}

func shareVertex(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// VerticesOf returns the sorted union of vertices in the given edges.
func (h *Hypergraph) VerticesOf(edgeIdx []int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, i := range edgeIdx {
		for _, v := range h.Edges[i] {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Database maps atom names to base relations.
type Database map[string]*relation.Relation

// Bind instantiates the query atoms against db: each atom's relation is
// looked up by name and its schema renamed to the atom's attributes. The
// returned relations share tuple storage with the originals (no copy).
func (q Query) Bind(db Database) ([]*relation.Relation, error) {
	out := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r, ok := db[a.Name]
		if !ok {
			return nil, fmt.Errorf("query %s: relation %q not in database", q.Name, a.Name)
		}
		if r.Arity() != len(a.Attrs) {
			return nil, fmt.Errorf("query %s: atom %s arity %d != relation arity %d",
				q.Name, a, len(a.Attrs), r.Arity())
		}
		b := r.Renamed(a.Name)
		b.Attrs = append([]string(nil), a.Attrs...)
		out[i] = b
	}
	return out, nil
}

// BindGraph builds the paper's test-case database: every atom of q is a
// copy of the same graph edge relation (§VII-A: "the database is
// constructed by allocating each relation of the query with a copy of the
// graph").
func (q Query) BindGraph(edges *relation.Relation) []*relation.Relation {
	if edges.Arity() != 2 {
		panic("BindGraph requires a binary edge relation")
	}
	out := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		if len(a.Attrs) != 2 {
			panic(fmt.Sprintf("BindGraph: atom %s is not binary", a))
		}
		b := edges.Renamed(a.Name)
		b.Attrs = append([]string(nil), a.Attrs...)
		out[i] = b
	}
	return out
}
