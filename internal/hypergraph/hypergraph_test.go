package hypergraph

import (
	"reflect"
	"testing"

	"adj/internal/relation"
)

func TestQueryAttrsOrder(t *testing.T) {
	q := Q4()
	if !reflect.DeepEqual(q.Attrs(), []string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("attrs=%v", q.Attrs())
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	for i := 1; i <= 11; i++ {
		name := "Q" + string(rune('0'+i))
		if i >= 10 {
			name = "Q1" + string(rune('0'+i-10))
		}
		if _, ok := cat[name]; !ok {
			t.Fatalf("catalog missing %s", name)
		}
	}
	if len(AllQueries()) != 11 {
		t.Fatalf("AllQueries=%d", len(AllQueries()))
	}
	if len(HardQueries()) != 6 {
		t.Fatalf("HardQueries=%d", len(HardQueries()))
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Get("Q99")
}

func TestQueryShapes(t *testing.T) {
	// Q2 is the 4-clique: 6 edges over 4 attrs.
	q2 := Q2()
	if len(q2.Atoms) != 6 || len(q2.Attrs()) != 4 {
		t.Fatalf("Q2: %d atoms %d attrs", len(q2.Atoms), len(q2.Attrs()))
	}
	// Q3 is the 5-clique: 10 edges over 5 attrs.
	q3 := Q3()
	if len(q3.Atoms) != 10 || len(q3.Attrs()) != 5 {
		t.Fatalf("Q3: %d atoms %d attrs", len(q3.Atoms), len(q3.Attrs()))
	}
	// Each of Q4..Q6 adds one chord.
	if len(Q5().Atoms) != len(Q4().Atoms)+1 || len(Q6().Atoms) != len(Q5().Atoms)+1 {
		t.Fatal("Q4/Q5/Q6 chord progression broken")
	}
}

func TestHypergraphEdgesWith(t *testing.T) {
	h := Q1().Hypergraph()
	if got := h.EdgesWith("a"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("edges with a: %v", got)
	}
	if got := h.EdgesWith("zz"); got != nil {
		t.Fatalf("edges with zz: %v", got)
	}
}

func TestConnectedEdges(t *testing.T) {
	h := Q9().Hypergraph() // path a-b-c-d
	if !h.ConnectedEdges([]int{0, 1, 2}) {
		t.Fatal("full path should be connected")
	}
	if h.ConnectedEdges([]int{0, 2}) {
		t.Fatal("R1(a,b) and R3(c,d) share no vertex")
	}
	if !h.ConnectedEdges([]int{1}) || !h.ConnectedEdges(nil) {
		t.Fatal("singletons and empty are connected by convention")
	}
}

func TestVerticesOf(t *testing.T) {
	h := Q1().Hypergraph()
	got := h.VerticesOf([]int{0, 1})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("vertices=%v", got)
	}
}

func TestBindDatabase(t *testing.T) {
	q := Q7()
	edges := relation.FromTuples("E", []string{"x", "y"}, [][]relation.Value{{1, 2}})
	db := Database{"R1": edges, "R2": edges}
	rels, err := q.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rels[0].Attrs, []string{"a", "b"}) {
		t.Fatalf("bound attrs=%v", rels[0].Attrs)
	}
	if rels[0].Len() != 1 {
		t.Fatal("bind lost tuples")
	}
	// Missing relation errors.
	if _, err := q.Bind(Database{"R1": edges}); err == nil {
		t.Fatal("expected error for missing R2")
	}
	// Arity mismatch errors.
	tri := relation.New("R2", "x", "y", "z")
	if _, err := q.Bind(Database{"R1": edges, "R2": tri}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestBindGraph(t *testing.T) {
	q := Q1()
	edges := relation.FromTuples("E", []string{"src", "dst"}, [][]relation.Value{{1, 2}, {2, 3}})
	rels := q.BindGraph(edges)
	if len(rels) != 3 {
		t.Fatalf("bound %d relations", len(rels))
	}
	for i, r := range rels {
		if r.Len() != 2 {
			t.Fatalf("rel %d lost tuples", i)
		}
		if !reflect.DeepEqual(r.Attrs, q.Atoms[i].Attrs) {
			t.Fatalf("rel %d attrs %v", i, r.Attrs)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("Qx :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Qx" || len(q.Atoms) != 3 {
		t.Fatalf("parsed %v", q)
	}
	if !reflect.DeepEqual(q.Atoms[1], Atom{Name: "R2", Attrs: []string{"b", "c"}}) {
		t.Fatalf("atom=%v", q.Atoms[1])
	}
}

func TestParseQuerySeparators(t *testing.T) {
	for _, in := range []string{
		"R1(a,b), R2(b,c)",
		"R1(a, b) JOIN R2(b, c)",
		"R1(a,b)\nR2(b,c)",
	} {
		q, err := ParseQuery(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(q.Atoms) != 2 {
			t.Fatalf("%q: %d atoms", in, len(q.Atoms))
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"R1",
		"R1(a,b) R1(b,c)", // duplicate name
		"R1(a,",
		"(a,b)",
	} {
		if _, err := ParseQuery(in); err == nil {
			t.Fatalf("%q: expected error", in)
		}
	}
}

func TestParseRoundtripCatalog(t *testing.T) {
	for _, q := range AllQueries() {
		back, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if back.Name != q.Name || len(back.Atoms) != len(q.Atoms) {
			t.Fatalf("%s roundtrip mismatch", q.Name)
		}
	}
}

func TestAtomsWith(t *testing.T) {
	q := Q1()
	if got := q.AtomsWith("b"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("atoms with b: %v", got)
	}
}
