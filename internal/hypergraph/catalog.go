package hypergraph

import "fmt"

// The benchmark query catalog of the paper (Fig. 7): subgraph queries with
// 3–5 nodes over a single edge relation. Q1–Q6 are the hard, cyclic queries
// the evaluation reports in detail; Q7–Q11 are the easy ones the paper
// omits results for. The paper gives Q1–Q6 explicitly (§VII-A); Q7–Q11 are
// only drawn, so we use standard easy patterns of the right sizes
// (documented in DESIGN.md).

func edge(name, a, b string) Atom { return Atom{Name: name, Attrs: []string{a, b}} }

func q(name string, atoms ...Atom) Query { return Query{Name: name, Atoms: atoms} }

// Catalog returns all benchmark queries keyed by name.
func Catalog() map[string]Query {
	m := make(map[string]Query)
	for _, qq := range AllQueries() {
		m[qq.Name] = qq
	}
	return m
}

// Get looks up a catalog query and panics on unknown names (the callers are
// benchmark harnesses where a typo should fail loudly).
func Get(name string) Query {
	qq, ok := Catalog()[name]
	if !ok {
		panic(fmt.Sprintf("hypergraph: unknown catalog query %q", name))
	}
	return qq
}

// AllQueries returns Q1..Q11 in order.
func AllQueries() []Query {
	return []Query{Q1(), Q2(), Q3(), Q4(), Q5(), Q6(), Q7(), Q8(), Q9(), Q10(), Q11()}
}

// HardQueries returns Q1..Q6, the ones §VII evaluates in detail.
func HardQueries() []Query {
	return []Query{Q1(), Q2(), Q3(), Q4(), Q5(), Q6()}
}

// Q1 is the triangle query.
func Q1() Query {
	return q("Q1",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "a", "c"))
}

// Q2 is the 4-clique.
func Q2() Query {
	return q("Q2",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "a"), edge("R5", "a", "c"), edge("R6", "b", "d"))
}

// Q3 is the 5-clique.
func Q3() Query {
	return q("Q3",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "e"), edge("R5", "e", "a"), edge("R6", "b", "d"),
		edge("R7", "b", "e"), edge("R8", "c", "a"), edge("R9", "c", "e"),
		edge("R10", "a", "d"))
}

// Q4 is the 5-cycle with chord (b,e).
func Q4() Query {
	return q("Q4",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "e"), edge("R5", "e", "a"), edge("R6", "b", "e"))
}

// Q5 is Q4 plus chord (b,d).
func Q5() Query {
	return q("Q5",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "e"), edge("R5", "e", "a"), edge("R6", "b", "e"),
		edge("R7", "b", "d"))
}

// Q6 is Q5 plus chord (c,e).
func Q6() Query {
	return q("Q6",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "e"), edge("R5", "e", "a"), edge("R6", "b", "e"),
		edge("R7", "b", "d"), edge("R8", "c", "e"))
}

// Q7 is the length-2 path (easy; acyclic).
func Q7() Query {
	return q("Q7", edge("R1", "a", "b"), edge("R2", "b", "c"))
}

// Q8 is the 3-star (easy; acyclic).
func Q8() Query {
	return q("Q8", edge("R1", "a", "b"), edge("R2", "a", "c"), edge("R3", "a", "d"))
}

// Q9 is the length-3 path (easy; acyclic).
func Q9() Query {
	return q("Q9", edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"))
}

// Q10 is the 4-cycle (cyclic but cheap: bounded output on sparse graphs).
func Q10() Query {
	return q("Q10",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "c", "d"),
		edge("R4", "d", "a"))
}

// Q11 is the tailed triangle: triangle (a,b,c) with pendant edge (c,d).
func Q11() Query {
	return q("Q11",
		edge("R1", "a", "b"), edge("R2", "b", "c"), edge("R3", "a", "c"),
		edge("R4", "c", "d"))
}

// PaperExample is the running example of §II (Eq. 2 / Fig. 2): five
// relations of mixed arity whose hypertree has bags {R1}, {R2,R3}, {R4,R5}.
func PaperExample() Query {
	return q("Qpaper",
		Atom{Name: "R1", Attrs: []string{"a", "b", "c"}},
		Atom{Name: "R2", Attrs: []string{"a", "d"}},
		Atom{Name: "R3", Attrs: []string{"c", "d"}},
		Atom{Name: "R4", Attrs: []string{"b", "e"}},
		Atom{Name: "R5", Attrs: []string{"c", "e"}})
}
