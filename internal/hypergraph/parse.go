package hypergraph

import (
	"fmt"
	"strings"
)

// ParseQuery parses a natural-join query in the paper's notation:
//
//	R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c)
//
// Atoms may be separated by "⋈", "JOIN" (any case) or commas between
// closing and opening parentheses. Attribute and relation names are
// identifiers ([A-Za-z_][A-Za-z0-9_]*). An optional "Name :- " prefix sets
// the query name.
func ParseQuery(input string) (Query, error) {
	q := Query{Name: "Q"}
	s := strings.TrimSpace(input)
	if i := strings.Index(s, ":-"); i >= 0 {
		q.Name = strings.TrimSpace(s[:i])
		s = s[i+2:]
	}
	// Normalize separators to commas between atoms.
	s = strings.ReplaceAll(s, "⋈", ",")
	s = strings.ReplaceAll(s, "JOIN", ",")
	s = strings.ReplaceAll(s, "join", ",")

	pos := 0
	n := len(s)
	skipWS := func() {
		for pos < n && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == ',') {
			pos++
		}
	}
	ident := func() (string, error) {
		start := pos
		for pos < n && (isAlnum(s[pos]) || s[pos] == '_') {
			pos++
		}
		if pos == start {
			return "", fmt.Errorf("parse query: expected identifier at offset %d in %q", pos, input)
		}
		return s[start:pos], nil
	}
	for {
		skipWS()
		if pos >= n {
			break
		}
		name, err := ident()
		if err != nil {
			return Query{}, err
		}
		skipWS()
		if pos >= n || s[pos] != '(' {
			return Query{}, fmt.Errorf("parse query: expected '(' after %q", name)
		}
		pos++
		var attrs []string
		for {
			skipWS()
			a, err := ident()
			if err != nil {
				return Query{}, err
			}
			attrs = append(attrs, a)
			skipWS()
			if pos < n && s[pos] == ')' {
				pos++
				break
			}
			if pos >= n {
				return Query{}, fmt.Errorf("parse query: unterminated atom %q", name)
			}
		}
		q.Atoms = append(q.Atoms, Atom{Name: name, Attrs: attrs})
	}
	if len(q.Atoms) == 0 {
		return Query{}, fmt.Errorf("parse query: no atoms in %q", input)
	}
	// Reject duplicate atom names: engines key worker fragments by name.
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Name] {
			return Query{}, fmt.Errorf("parse query: duplicate relation name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return q, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
