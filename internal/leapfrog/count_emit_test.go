package leapfrog

import (
	"errors"
	"math/rand"
	"testing"

	"adj/internal/relation"
	"adj/internal/testutil"
)

// The count-only paths (no sink) of frame.drain and Extender.DrainLeaf
// must report exactly the counts of the emitting paths under limit/budget
// truncation — at every boundary, not just in the unbudgeted steady state.
// Drift here would make budget failures (and the paper's frame-top bars)
// depend on whether output was collected.
func TestCountEmitAgreementAtEveryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 8; iter++ {
		q, rels := testutil.RandQueryInstance(rng, 3, 3, 25, 6)
		order := q.Attrs()
		tries := BuildTries(rels, order)
		full, err := Join(tries, order, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Every budget up to just past the total work hits a different
		// truncation boundary; cap the sweep for big instances but always
		// include the boundaries around the total.
		maxB := full.TotalWithResults() + 2
		budgets := []int64{}
		for b := int64(1); b <= maxB && b <= 80; b++ {
			budgets = append(budgets, b)
		}
		for _, b := range []int64{maxB - 2, maxB - 1, maxB} {
			if b > 80 {
				budgets = append(budgets, b)
			}
		}
		runs := []struct {
			name string
			run  func(Options) (Stats, error)
		}{
			{"plain", func(o Options) (Stats, error) { return Join(tries, order, o) }},
			{"cached-off", func(o Options) (Stats, error) { return NewCachedJoin(tries, order, 0).Run(o) }},
			{"cached-on", func(o Options) (Stats, error) { return NewCachedJoin(tries, order, 1<<20).Run(o) }},
		}
		for _, r := range runs {
			for _, b := range budgets {
				countSt, countErr := r.run(Options{Budget: b})
				out := relation.New("out", order...)
				sinkSt, sinkErr := r.run(Options{Budget: b, Sink: relation.NewColumnWriter(out)})
				shimOut := relation.New("out", order...)
				shimSt, shimErr := r.run(Options{Budget: b, Emit: func(tp relation.Tuple) { shimOut.AppendTuple(tp) }})
				if !errors.Is(countErr, sinkErr) && !errors.Is(sinkErr, countErr) {
					t.Fatalf("iter=%d %s budget=%d: errors diverge: count=%v sink=%v",
						iter, r.name, b, countErr, sinkErr)
				}
				if !errors.Is(countErr, shimErr) && !errors.Is(shimErr, countErr) {
					t.Fatalf("iter=%d %s budget=%d: errors diverge: count=%v shim=%v",
						iter, r.name, b, countErr, shimErr)
				}
				if countSt.Results != sinkSt.Results || countSt.Results != shimSt.Results {
					t.Fatalf("iter=%d %s budget=%d: results diverge: count=%d sink=%d shim=%d",
						iter, r.name, b, countSt.Results, sinkSt.Results, shimSt.Results)
				}
				for d := range countSt.LevelTuples {
					if countSt.LevelTuples[d] != sinkSt.LevelTuples[d] {
						t.Fatalf("iter=%d %s budget=%d: level %d tuples diverge: count=%d sink=%d",
							iter, r.name, b, d, countSt.LevelTuples[d], sinkSt.LevelTuples[d])
					}
					if countSt.LevelTuples[d] != shimSt.LevelTuples[d] {
						t.Fatalf("iter=%d %s budget=%d: level %d tuples diverge: count=%d shim=%d",
							iter, r.name, b, d, countSt.LevelTuples[d], shimSt.LevelTuples[d])
					}
				}
				// Sink and shim deliveries must carry identical tuples.
				if out.Len() != shimOut.Len() || !out.Sort().Equal(shimOut.Sort()) {
					t.Fatalf("iter=%d %s budget=%d: sink and shim outputs differ (%d vs %d tuples)",
						iter, r.name, b, out.Len(), shimOut.Len())
				}
				if sinkSt.EmittedValues != int64(out.Len()) {
					t.Fatalf("iter=%d %s budget=%d: EmittedValues=%d but %d tuples materialized",
						iter, r.name, b, sinkSt.EmittedValues, out.Len())
				}
				// Counting-only runs must not report emissions.
				if countSt.EmittedRuns != 0 || countSt.EmittedValues != 0 {
					t.Fatalf("iter=%d %s budget=%d: counting run reported emissions (%d runs)",
						iter, r.name, b, countSt.EmittedRuns)
				}
			}
		}
	}
}

// DrainLeaf's count-only and emitting forms must agree at every explicit
// limit, including 0, one past the intersection size, and everything in
// between — and the emitted prefix must match the counted values.
func TestDrainLeafCountEmitAgreementAtEveryLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		k := 1 + rng.Intn(4)
		var rels []*relation.Relation
		for i := 0; i < k; i++ {
			r := relation.New("R"+string(rune('0'+i)), "x", "y")
			for j := 0; j < 60; j++ {
				r.Append(rng.Int63n(6), rng.Int63n(30))
			}
			rels = append(rels, r)
		}
		order := []string{"x", "y"}
		tries := BuildTries(rels, order)
		ext, err := NewExtender(tries, order)
		if err != nil {
			t.Fatal(err)
		}
		binding := make([]Value, 2)
		firsts, _ := ext.Extend(binding, 0)
		for _, x := range firsts {
			binding[0] = x
			want, _ := ext.Extend(binding, 1)
			for lim := int64(0); lim <= int64(len(want))+2; lim++ {
				cntOnly, _ := ext.DrainLeaf(binding, 1, lim, nil)
				var got []Value
				cntEmit, _ := ext.DrainLeaf(binding, 1, lim, SinkFunc(func(tp relation.Tuple) {
					got = append(got, tp[1])
				}))
				if cntOnly != cntEmit {
					t.Fatalf("iter=%d k=%d x=%d lim=%d: count-only=%d emitting=%d",
						iter, k, x, lim, cntOnly, cntEmit)
				}
				if int64(len(got)) != cntEmit {
					t.Fatalf("iter=%d k=%d x=%d lim=%d: emitted %d values, counted %d",
						iter, k, x, lim, len(got), cntEmit)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("iter=%d k=%d x=%d lim=%d: value %d: got %d want %d",
							iter, k, x, lim, i, got[i], want[i])
					}
				}
			}
		}
	}
}
