package leapfrog

import (
	"errors"
	"math/rand"
	"testing"

	"adj/internal/relation"
	"adj/internal/testutil"
)

// CachedJoin with the streaming leaf drain (cache disabled, and cache
// saturated by a tiny budget) must produce exactly the plain joiner's
// results and output tuples on random instances.
func TestCachedLeafDrainEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		q, rels := testutil.RandQueryInstance(rng, 3, 4, 60, 10)
		order := q.Attrs()
		tries := BuildTries(rels, order)

		collect := func(run func(Options) (Stats, error)) (int64, string) {
			out := relation.New("out", order...)
			st, err := run(Options{Emit: func(tp relation.Tuple) { out.AppendTuple(tp) }})
			if err != nil {
				t.Fatal(err)
			}
			return st.Results, out.SortDedup().String()
		}

		wantN, wantOut := collect(func(o Options) (Stats, error) { return Join(tries, order, o) })
		for _, budget := range []int{0, 1, 1 << 20} {
			cj := NewCachedJoin(tries, order, budget)
			gotN, gotOut := collect(cj.Run)
			if gotN != wantN || gotOut != wantOut {
				t.Fatalf("iter=%d cacheBudget=%d: cached join diverged: got %d results, want %d",
					iter, budget, gotN, wantN)
			}
		}
	}
}

// DrainLeaf must intersect correctly for rings of 1, 2 and 3+ lists: run
// the cached join over queries whose leaf attribute appears in varying
// numbers of relations and cross-check against the extender's
// materializing path.
func TestDrainLeafMatchesExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		// k relations all over (x, y): the leaf level intersects k lists.
		k := 1 + rng.Intn(4)
		var rels []*relation.Relation
		for i := 0; i < k; i++ {
			r := relation.New("R"+string(rune('0'+i)), "x", "y")
			for j := 0; j < 80; j++ {
				r.Append(rng.Int63n(8), rng.Int63n(40))
			}
			rels = append(rels, r)
		}
		order := []string{"x", "y"}
		tries := BuildTries(rels, order)
		ext, err := NewExtender(tries, order)
		if err != nil {
			t.Fatal(err)
		}
		binding := make([]Value, 2)
		firsts, _ := ext.Extend(binding, 0)
		for _, x := range firsts {
			binding[0] = x
			want, _ := ext.Extend(binding, 1)
			var got []Value
			cnt, _ := ext.DrainLeaf(binding, 1, -1, SinkFunc(func(t relation.Tuple) { got = append(got, t[1]) }))
			if int(cnt) != len(want) {
				t.Fatalf("iter=%d k=%d x=%d: drained %d values, Extend found %d", iter, k, x, cnt, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter=%d k=%d x=%d: value %d: got %d want %d", iter, k, x, i, got[i], want[i])
				}
			}
			// Limited drain returns a prefix.
			if len(want) > 1 {
				lim := int64(len(want) / 2)
				var pre []Value
				cnt, _ := ext.DrainLeaf(binding, 1, lim, SinkFunc(func(t relation.Tuple) { pre = append(pre, t[1]) }))
				if cnt != lim {
					t.Fatalf("limited drain returned %d, want %d", cnt, lim)
				}
				for i := range pre {
					if pre[i] != want[i] {
						t.Fatalf("limited drain diverged at %d", i)
					}
				}
			}
		}
	}
}

// Budget failures must still surface from the drained leaf path.
func TestCachedDrainRespectsBudget(t *testing.T) {
	r := relation.New("R", "a", "b")
	s := relation.New("S", "b", "c")
	for i := relation.Value(0); i < 1000; i++ {
		r.Append(1, i%3)
		s.Append(i%3, i)
	}
	order := []string{"a", "b", "c"}
	tries := BuildTries([]*relation.Relation{r, s}, order)
	cj := NewCachedJoin(tries, order, 0) // caching off → leaf drains
	st, err := cj.Run(Options{Budget: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v want ErrBudget", err)
	}
	if total := st.TotalWithResults(); total > 30 {
		t.Fatalf("did %d work units before budget bail-out (budget 10)", total)
	}
}
