package leapfrog

import "adj/internal/relation"

// Sink receives join results in batched, columnar-friendly form. Results
// of a worst-case-optimal join arrive as runs: every tuple of a run shares
// the binding of all attributes except the deepest, which the leaf-level
// intersection enumerates in sorted order. A sink is told the shared
// prefix once per run (BeginRun) and then handed whole slices of leaf
// values (AppendRun) — the ring-of-2 and sorted-slice leaf fast paths hold
// the matching values contiguously, so no per-tuple callback sits between
// the intersection kernel and the output columns.
//
// relation.ColumnWriter satisfies Sink directly and is the production
// implementation; SinkFunc adapts the legacy per-tuple emit form.
type Sink interface {
	// BeginRun announces the binding prefix (values of order[0:d], where d
	// is the leaf depth) shared by subsequent AppendRun calls. The slice
	// aliases the joiner's binding buffer; copy to retain past the call.
	BeginRun(prefix []Value)
	// AppendRun delivers sorted leaf values extending the current prefix,
	// one result tuple per value. The slice may alias trie storage or
	// joiner scratch; copy to retain past the call.
	AppendRun(vals []Value)
}

// funcSink adapts a per-tuple emit callback to the Sink interface — the
// compatibility shim behind Options.Emit. It reassembles each run into
// full tuples in a reused buffer, preserving the legacy convention that
// the emitted tuple aliases an internal buffer.
type funcSink struct {
	emit func(relation.Tuple)
	buf  []Value
}

func (s *funcSink) BeginRun(prefix []Value) {
	s.buf = append(s.buf[:0], prefix...)
	s.buf = append(s.buf, 0)
}

func (s *funcSink) AppendRun(vals []Value) {
	d := len(s.buf) - 1
	for _, v := range vals {
		s.buf[d] = v
		s.emit(s.buf)
	}
}

// SinkFunc wraps a legacy per-tuple emit callback as a Sink. Engines and
// tests that still consume one tuple at a time use it to ride the batched
// pipeline unchanged.
func SinkFunc(emit func(relation.Tuple)) Sink {
	return &funcSink{emit: emit}
}

// sinkOf resolves the effective sink of an Options value: an explicit
// Sink wins; otherwise a legacy Emit callback is wrapped in the given
// scratch shim (pooled by the joiner so steady-state runs allocate
// nothing); nil means counting only.
func sinkOf(opt Options, scratch *funcSink) Sink {
	if opt.Sink != nil {
		return opt.Sink
	}
	if opt.Emit != nil {
		scratch.emit = opt.Emit
		return scratch
	}
	return nil
}

// deliver hands one run to the sink and maintains the emitted-run
// counters; used by every leaf path so accounting cannot drift.
func deliver(sink Sink, st *Stats, vals []Value) {
	if len(vals) == 0 {
		return
	}
	sink.AppendRun(vals)
	st.EmittedRuns++
	st.EmittedValues += int64(len(vals))
}
