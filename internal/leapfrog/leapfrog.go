// Package leapfrog implements the Leapfrog Triejoin worst-case-optimal join
// (Veldhuizen 2012; §II-A and Alg. 1 of the paper). The join walks a global
// attribute order; at each depth it intersects, by leapfrogging seeks, the
// sorted child ranges of every relation containing that attribute. The
// implementation is iterative ("a series of iterators", as the paper notes)
// and leaves no intermediate results in memory.
//
// Per-level extension counters feed the cost model (§III-B) and reproduce
// Fig. 6 and Fig. 8.
package leapfrog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"adj/internal/relation"
	"adj/internal/trie"
)

// Value aliases relation.Value.
type Value = relation.Value

// ErrBudget is returned when a run exceeds Options.Budget; the experiment
// harness maps it to the paper's frame-top "did not finish" bars.
var ErrBudget = errors.New("leapfrog: extension budget exceeded")

// ErrCanceled is returned when Options.Cancel reports cancellation mid-run;
// the engines map it back to their context's error.
var ErrCanceled = errors.New("leapfrog: run canceled")

// cancelStride is how many main-loop iterations pass between Cancel polls:
// rare enough that the indirect call disappears from the hot path, frequent
// enough that cancellation latency stays in the microseconds.
const cancelStride = 1024

// Stats captures the work a join performed.
type Stats struct {
	// LevelTuples[d] counts the partial bindings materialized at depth d
	// (|T_{d+1}| in the paper's notation: bindings of the first d+1 attrs).
	LevelTuples []int64
	// LevelSeeks[d] counts iterator seek operations at depth d, the unit of
	// computation cost the β calibration uses.
	LevelSeeks []int64
	// Results is the number of full output tuples.
	Results int64
	// EmittedRuns counts batched run deliveries to the result sink and
	// EmittedValues the tuples inside them (EmittedValues == Results on an
	// unbudgeted emitting run). Both stay zero for counting-only runs; the
	// bench harness asserts they are nonzero whenever output is collected,
	// pinning that the batched path actually engages.
	EmittedRuns   int64
	EmittedValues int64
}

// Total returns the total number of intermediate tuples across levels,
// excluding final results.
func (s Stats) Total() int64 {
	var t int64
	for d := 0; d < len(s.LevelTuples)-1; d++ {
		t += s.LevelTuples[d]
	}
	return t
}

// TotalWithResults sums all levels including the last.
func (s Stats) TotalWithResults() int64 {
	var t int64
	for _, v := range s.LevelTuples {
		t += v
	}
	return t
}

// Options configures a run.
type Options struct {
	// Sink, when non-nil, receives results as batched runs (see Sink) —
	// the columnar fast path. It takes precedence over Emit.
	Sink Sink
	// Emit, when non-nil, receives every result tuple (values in the global
	// attribute order). The tuple aliases an internal buffer; copy to
	// retain. Legacy per-tuple form: it is served through a Sink shim, so
	// per-value delivery survives only inside the adapter.
	Emit func(relation.Tuple)
	// Budget caps total extension work (sum of level tuples); 0 = unlimited.
	Budget int64
	// FirstFixed, when non-nil, restricts the first attribute to one value —
	// the constrained Leapfrog the sampler runs per sampled value (§IV).
	FirstFixed *Value
	// Cancel, when non-nil, is polled periodically (every cancelStride
	// bindings); returning true aborts the run with ErrCanceled. The engines
	// wire a context.Context's Err here so a mid-join cancellation returns
	// promptly instead of finishing the cube.
	Cancel func() bool
}

// BuildTries builds, for each bound relation, a trie whose attribute order
// is the relation's attributes sorted by position in the global order. All
// engines share this preparation step.
func BuildTries(rels []*relation.Relation, order []string) []*trie.Trie {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	out := make([]*trie.Trie, len(rels))
	for i, r := range rels {
		attrs := append([]string(nil), r.Attrs...)
		sort.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
		out[i] = trie.Build(r, attrs)
	}
	return out
}

// Join runs Leapfrog Triejoin over pre-built tries. Each trie's attribute
// list must be sorted by position in order (as BuildTries produces), and
// every trie attribute must appear in order. Joiner state (iterators,
// per-depth frames, bindings) comes from a pool, so repeated joins — the
// per-cube loop of every engine — allocate only their Stats counters.
func Join(tries []*trie.Trie, order []string, opt Options) (Stats, error) {
	j := joinerPool.Get().(*joiner)
	defer joinerPool.Put(j)
	if err := j.init(tries, order); err != nil {
		return Stats{}, err
	}
	return j.run(opt)
}

// JoinRelations is the convenience form: build tries then join.
func JoinRelations(rels []*relation.Relation, order []string, opt Options) (Stats, error) {
	return Join(BuildTries(rels, order), order, opt)
}

// Count runs the join and returns only the result count.
func Count(rels []*relation.Relation, order []string) (int64, error) {
	st, err := JoinRelations(rels, order, Options{})
	return st.Results, err
}

// joiner holds the per-run state; instances are pooled and re-initialized
// per join, reusing every backing array.
type joiner struct {
	order []string
	n     int
	// active[d] lists the trie iterators participating at depth d.
	active [][]*trie.Iterator
	// iters owns one iterator per trie (values, re-Init'ed per run).
	iters []trie.Iterator
	// frames holds one leapfrog ring per depth.
	frames []frame
	// binding holds the current prefix values.
	binding []Value
	// pos maps attribute -> order position, cleared per init.
	pos map[string]int
	// runBuf stages non-contiguous leaf matches (rings of 2+) into one
	// slice per drain so they reach the sink as a single run.
	runBuf []Value
	// fsink is the pooled per-tuple Emit adapter.
	fsink funcSink
}

var joinerPool = sync.Pool{New: func() interface{} { return &joiner{} }}

// init rebinds the pooled joiner to a new trie set and order.
func (j *joiner) init(tries []*trie.Trie, order []string) error {
	if j.pos == nil {
		j.pos = make(map[string]int, len(order))
	} else {
		clear(j.pos)
	}
	for i, a := range order {
		j.pos[a] = i
	}
	j.order = order
	j.n = len(order)
	j.binding = growValues(j.binding, j.n)
	if cap(j.iters) < len(tries) {
		j.iters = make([]trie.Iterator, len(tries))
	} else {
		j.iters = j.iters[:len(tries)]
	}
	if cap(j.active) < j.n {
		j.active = make([][]*trie.Iterator, j.n)
	} else {
		j.active = j.active[:j.n]
	}
	for d := range j.active {
		j.active[d] = j.active[d][:0]
	}
	for ti, t := range tries {
		prev := -1
		for _, a := range t.Attrs {
			p, ok := j.pos[a]
			if !ok {
				return fmt.Errorf("leapfrog: trie attribute %q not in order %v", a, order)
			}
			if p < prev {
				return fmt.Errorf("leapfrog: trie %d attrs %v not sorted by order %v", ti, t.Attrs, order)
			}
			prev = p
		}
		j.iters[ti].Init(t)
	}
	for ti, t := range tries {
		it := &j.iters[ti]
		for _, a := range t.Attrs {
			j.active[j.pos[a]] = append(j.active[j.pos[a]], it)
		}
	}
	for d, as := range j.active {
		if len(as) == 0 {
			return fmt.Errorf("leapfrog: attribute %q not covered by any relation", order[d])
		}
	}
	if cap(j.frames) < j.n {
		j.frames = make([]frame, j.n)
	} else {
		j.frames = j.frames[:j.n]
	}
	for d := range j.frames {
		f := &j.frames[d]
		f.iters = j.active[d]
		na := len(f.iters)
		f.keys = growValues(f.keys, na)
		if cap(f.vals) < na {
			f.vals = make([][]Value, na)
			f.pos = make([]int, na)
			f.base = make([]int32, na)
		} else {
			f.vals = f.vals[:na]
			f.pos = f.pos[:na]
			f.base = f.base[:na]
		}
		f.p = 0
		f.key = 0
		f.atEnd = false
		f.open_ = false
	}
	return nil
}

func growValues(s []Value, n int) []Value {
	if cap(s) < n {
		return make([]Value, n)
	}
	return s[:n]
}

// run executes the join iteratively.
func (j *joiner) run(opt Options) (Stats, error) {
	st := Stats{LevelTuples: make([]int64, j.n), LevelSeeks: make([]int64, j.n)}
	sink := sinkOf(opt, &j.fsink)
	defer func() { j.fsink.emit = nil }()
	lf := j.frames
	var work int64
	d := 0
	if !lf[0].open(&st, 0) {
		return st, nil
	}
	if opt.FirstFixed != nil {
		if !lf[0].seekExact(*opt.FirstFixed, &st, 0) {
			return st, nil
		}
		if j.n == 1 {
			// Single-attribute constrained run: exactly the fixed value.
			st.LevelTuples[0] = 1
			st.Results = 1
			if sink != nil {
				j.binding[0] = *opt.FirstFixed
				sink.BeginRun(j.binding[:0])
				deliver(sink, &st, j.binding[:1])
			}
			return st, nil
		}
	}
	var steps int
	for d >= 0 {
		if opt.Cancel != nil {
			if steps%cancelStride == 0 && opt.Cancel() {
				return st, ErrCanceled
			}
			steps++
		}
		f := &lf[d]
		if f.atEnd {
			// Exhausted this level: go up and advance.
			f.close()
			d--
			if d >= 0 {
				if opt.FirstFixed != nil && d == 0 {
					// Constrained run: only the fixed value at level 0.
					lf[0].atEnd = true
					continue
				}
				lf[d].next(&st, d)
			}
			continue
		}
		if d == j.n-1 {
			// Leaf level: drain the whole remaining intersection in one
			// pass instead of a next/search round trip per result. The
			// drain is capped at the remaining budget so a skewed hub
			// leaf still bails out cheaply.
			limit := int64(-1)
			if opt.Budget > 0 {
				limit = opt.Budget - work + 1
			}
			cnt := f.drain(&st, d, sink, j.binding, limit, &j.runBuf)
			st.LevelTuples[d] += cnt
			st.Results += cnt
			work += cnt
			if opt.Budget > 0 && work > opt.Budget {
				return st, ErrBudget
			}
			continue
		}
		// A value is bound at depth d.
		j.binding[d] = f.key
		st.LevelTuples[d]++
		work++
		if opt.Budget > 0 && work > opt.Budget {
			return st, ErrBudget
		}
		// Descend: sync this level's winning positions back into the
		// iterators so the child ranges below resolve to the bound value.
		f.sync()
		d++
		lf[d].open(&st, d)
	}
	return st, nil
}

// frame is the leapfrog state for one depth: the classic ring of
// iterators, flattened to slice cursors. On open the frame captures each
// iterator's sibling slice once; the inner search loop then gallops over
// plain []Value with local indices — no pointer-chasing through the trie —
// and positions are synced back to the iterators (SetPos) only when the
// join descends.
type frame struct {
	iters []*trie.Iterator
	// vals[i] is iterator i's current sibling slice, pos[i] the cursor
	// within it, base[i] the slice's absolute start in the level's value
	// array, keys[i] the cached vals[i][pos[i]].
	vals  [][]Value
	pos   []int
	base  []int32
	keys  []Value
	p     int
	key   Value
	atEnd bool
	open_ bool
}

// open descends all active iterators and runs leapfrog-init. Returns false
// when the intersection is immediately empty.
func (f *frame) open(st *Stats, d int) bool {
	// Open every iterator before inspecting ranges: close() pops the whole
	// ring, so bailing out with some iterators unopened would desync their
	// depth (an empty trie — e.g. a relation with no fragment in a cube —
	// yields an empty range here).
	for _, it := range f.iters {
		it.Open()
	}
	f.open_ = true
	f.atEnd = false
	for i, it := range f.iters {
		rng := it.CurrentRange()
		if len(rng) == 0 {
			f.atEnd = true
			return false
		}
		f.vals[i] = rng
		f.base[i] = it.NodePos()
		f.pos[i] = 0
		f.keys[i] = rng[0]
	}
	// Sort the ring by current key (ring invariant). The ring has one entry
	// per relation containing this attribute — a handful — so an in-place
	// insertion sort beats sort.Slice and avoids its per-call allocations.
	for i := 1; i < len(f.iters); i++ {
		x, vx, bx, kx := f.iters[i], f.vals[i], f.base[i], f.keys[i]
		m := i - 1
		for m >= 0 && f.keys[m] > kx {
			f.iters[m+1] = f.iters[m]
			f.vals[m+1] = f.vals[m]
			f.base[m+1] = f.base[m]
			f.keys[m+1] = f.keys[m]
			m--
		}
		f.iters[m+1], f.vals[m+1], f.base[m+1], f.keys[m+1] = x, vx, bx, kx
	}
	f.p = 0
	f.search(st, d)
	return !f.atEnd
}

// sync writes the frame's slice cursors back into the iterators; required
// before opening the next depth (child ranges derive from parent NodePos).
func (f *frame) sync() {
	for i, it := range f.iters {
		it.SetPos(f.base[i] + int32(f.pos[i]))
	}
}

// close pops all active iterators back to the parent level.
func (f *frame) close() {
	if !f.open_ {
		return
	}
	for _, it := range f.iters {
		it.Up()
	}
	f.open_ = false
}

// seekSlice returns the first index >= from with vals[idx] >= v, by
// galloping then binary search — the amortized-logarithmic seek the
// worst-case-optimality argument needs, over a flat slice.
func seekSlice(vals []Value, from int, v Value) int {
	n := len(vals)
	step := 1
	prev := from
	for from+step < n && vals[from+step] < v {
		prev = from + step
		step <<= 1
	}
	a, b := prev+1, n
	if from+step < n {
		b = from + step + 1
	}
	for a < b {
		mid := int(uint(a+b) >> 1)
		if vals[mid] < v {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return a
}

// search is leapfrog-search: advance the ring until all keys agree.
func (f *frame) search(st *Stats, d int) {
	k := len(f.iters)
	if k == 2 {
		f.search2(st, d)
		return
	}
	xPrime := f.keys[(f.p+k-1)%k]
	var seeks int64
	for {
		x := f.keys[f.p]
		if x == xPrime {
			f.key = x
			st.LevelSeeks[d] += seeks
			return
		}
		vals := f.vals[f.p]
		np := seekSlice(vals, f.pos[f.p], xPrime)
		seeks++
		if np >= len(vals) {
			f.atEnd = true
			st.LevelSeeks[d] += seeks
			return
		}
		f.pos[f.p] = np
		xPrime = vals[np]
		f.keys[f.p] = xPrime
		f.p++
		if f.p == k {
			f.p = 0
		}
	}
}

// search2 is leapfrog-search for the two-iterator ring — the dominant
// shape in subgraph queries (every edge attribute is shared by exactly two
// atoms in triangles, paths and most cliques' levels). Both cursors live
// in registers for the whole pursuit.
func (f *frame) search2(st *Stats, d int) {
	v0, v1 := f.vals[0], f.vals[1]
	p0, p1 := f.pos[0], f.pos[1]
	k0, k1 := f.keys[0], f.keys[1]
	var seeks int64
	for k0 != k1 {
		if k0 < k1 {
			p0 = seekSlice(v0, p0, k1)
			seeks++
			if p0 >= len(v0) {
				f.atEnd = true
				break
			}
			k0 = v0[p0]
		} else {
			p1 = seekSlice(v1, p1, k0)
			seeks++
			if p1 >= len(v1) {
				f.atEnd = true
				break
			}
			k1 = v1[p1]
		}
	}
	f.pos[0], f.pos[1] = p0, p1
	f.keys[0], f.keys[1] = k0, k1
	f.key = k0
	f.p = 0
	st.LevelSeeks[d] += seeks
}

// next is leapfrog-next: advance past the current match.
func (f *frame) next(st *Stats, d int) {
	st.LevelSeeks[d]++
	np := f.pos[f.p] + 1
	vals := f.vals[f.p]
	if np >= len(vals) {
		f.atEnd = true
		return
	}
	f.pos[f.p] = np
	f.keys[f.p] = vals[np]
	f.p++
	if f.p == len(f.iters) {
		f.p = 0
	}
	f.search(st, d)
}

// drain consumes the frame's remaining intersection — the caller must be
// positioned on a match — counting (and optionally emitting) every value,
// and leaves the frame atEnd. Rings of one and two, the common leaf shapes
// in subgraph queries, run as tight sorted-list intersections. A
// non-negative limit stops the drain once that many values are taken (the
// caller's remaining work budget); the frame is abandoned mid-range, which
// is fine because the caller returns ErrBudget immediately.
//
// Results reach the sink as one run sharing the prefix binding[:d]: the
// single-iterator case hands its sibling slice to the sink untouched (the
// values already sit contiguously in trie storage), the multi-iterator
// intersections stage matches in runBuf. The count is identical with and
// without a sink — both flows share the same loops — which the truncation
// regression suite pins at every limit boundary.
func (f *frame) drain(st *Stats, d int, sink Sink, binding []Value, limit int64, runBuf *[]Value) int64 {
	var results int64
	if sink != nil {
		sink.BeginRun(binding[:d])
	}
	switch len(f.iters) {
	case 1:
		rest := f.vals[0][f.pos[0]:]
		if limit >= 0 && int64(len(rest)) > limit {
			rest = rest[:limit]
		}
		results = int64(len(rest))
		if sink != nil {
			deliver(sink, st, rest)
		}
	case 2:
		v0, v1 := f.vals[0], f.vals[1]
		p0, p1 := f.pos[0], f.pos[1]
		k0, k1 := f.keys[0], f.keys[1]
		run := (*runBuf)[:0]
		var seeks int64
		for limit < 0 || results < limit {
			if k0 == k1 {
				results++
				if sink != nil {
					run = append(run, k0)
				}
				p0++
				p1++
				if p0 >= len(v0) || p1 >= len(v1) {
					break
				}
				k0, k1 = v0[p0], v1[p1]
			} else if k0 < k1 {
				p0 = seekSlice(v0, p0, k1)
				seeks++
				if p0 >= len(v0) {
					break
				}
				k0 = v0[p0]
			} else {
				p1 = seekSlice(v1, p1, k0)
				seeks++
				if p1 >= len(v1) {
					break
				}
				k1 = v1[p1]
			}
		}
		st.LevelSeeks[d] += seeks
		if sink != nil {
			deliver(sink, st, run)
		}
		*runBuf = run[:0]
	default:
		run := (*runBuf)[:0]
		for !f.atEnd && (limit < 0 || results < limit) {
			results++
			if sink != nil {
				run = append(run, f.key)
			}
			f.next(st, d)
		}
		if sink != nil {
			deliver(sink, st, run)
		}
		*runBuf = run[:0]
	}
	f.atEnd = true
	return results
}

// seekExact positions the level at exactly v; returns false if v is not in
// the intersection.
func (f *frame) seekExact(v Value, st *Stats, d int) bool {
	for !f.atEnd && f.key < v {
		// Seek one iterator to v then re-search.
		st.LevelSeeks[d]++
		vals := f.vals[f.p]
		np := seekSlice(vals, f.pos[f.p], v)
		if np >= len(vals) {
			f.atEnd = true
			return false
		}
		f.pos[f.p] = np
		f.keys[f.p] = vals[np]
		f.p = (f.p + 1) % len(f.iters)
		f.search(st, d)
	}
	if f.atEnd || f.key != v {
		f.atEnd = true
		return false
	}
	return true
}
