// Package leapfrog implements the Leapfrog Triejoin worst-case-optimal join
// (Veldhuizen 2012; §II-A and Alg. 1 of the paper). The join walks a global
// attribute order; at each depth it intersects, by leapfrogging seeks, the
// sorted child ranges of every relation containing that attribute. The
// implementation is iterative ("a series of iterators", as the paper notes)
// and leaves no intermediate results in memory.
//
// Per-level extension counters feed the cost model (§III-B) and reproduce
// Fig. 6 and Fig. 8.
package leapfrog

import (
	"errors"
	"fmt"
	"sort"

	"adj/internal/relation"
	"adj/internal/trie"
)

// Value aliases relation.Value.
type Value = relation.Value

// ErrBudget is returned when a run exceeds Options.Budget; the experiment
// harness maps it to the paper's frame-top "did not finish" bars.
var ErrBudget = errors.New("leapfrog: extension budget exceeded")

// Stats captures the work a join performed.
type Stats struct {
	// LevelTuples[d] counts the partial bindings materialized at depth d
	// (|T_{d+1}| in the paper's notation: bindings of the first d+1 attrs).
	LevelTuples []int64
	// LevelSeeks[d] counts iterator seek operations at depth d, the unit of
	// computation cost the β calibration uses.
	LevelSeeks []int64
	// Results is the number of full output tuples.
	Results int64
}

// Total returns the total number of intermediate tuples across levels,
// excluding final results.
func (s Stats) Total() int64 {
	var t int64
	for d := 0; d < len(s.LevelTuples)-1; d++ {
		t += s.LevelTuples[d]
	}
	return t
}

// TotalWithResults sums all levels including the last.
func (s Stats) TotalWithResults() int64 {
	var t int64
	for _, v := range s.LevelTuples {
		t += v
	}
	return t
}

// Options configures a run.
type Options struct {
	// Emit, when non-nil, receives every result tuple (values in the global
	// attribute order). The tuple aliases an internal buffer; copy to retain.
	Emit func(relation.Tuple)
	// Budget caps total extension work (sum of level tuples); 0 = unlimited.
	Budget int64
	// FirstFixed, when non-nil, restricts the first attribute to one value —
	// the constrained Leapfrog the sampler runs per sampled value (§IV).
	FirstFixed *Value
}

// BuildTries builds, for each bound relation, a trie whose attribute order
// is the relation's attributes sorted by position in the global order. All
// engines share this preparation step.
func BuildTries(rels []*relation.Relation, order []string) []*trie.Trie {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	out := make([]*trie.Trie, len(rels))
	for i, r := range rels {
		attrs := append([]string(nil), r.Attrs...)
		sort.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
		out[i] = trie.Build(r, attrs)
	}
	return out
}

// Join runs Leapfrog Triejoin over pre-built tries. Each trie's attribute
// list must be sorted by position in order (as BuildTries produces), and
// every trie attribute must appear in order.
func Join(tries []*trie.Trie, order []string, opt Options) (Stats, error) {
	j, err := newJoiner(tries, order)
	if err != nil {
		return Stats{}, err
	}
	return j.run(opt)
}

// JoinRelations is the convenience form: build tries then join.
func JoinRelations(rels []*relation.Relation, order []string, opt Options) (Stats, error) {
	return Join(BuildTries(rels, order), order, opt)
}

// Count runs the join and returns only the result count.
func Count(rels []*relation.Relation, order []string) (int64, error) {
	st, err := JoinRelations(rels, order, Options{})
	return st.Results, err
}

// joiner holds the per-run state.
type joiner struct {
	order []string
	n     int
	// active[d] lists the trie iterators participating at depth d.
	active [][]*trie.Iterator
	// iters owns one iterator per trie.
	iters []*trie.Iterator
	// binding holds the current prefix values.
	binding []Value
}

func newJoiner(tries []*trie.Trie, order []string) (*joiner, error) {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	j := &joiner{order: order, n: len(order)}
	j.active = make([][]*trie.Iterator, len(order))
	j.binding = make([]Value, len(order))
	for ti, t := range tries {
		prev := -1
		for _, a := range t.Attrs {
			p, ok := pos[a]
			if !ok {
				return nil, fmt.Errorf("leapfrog: trie attribute %q not in order %v", a, order)
			}
			if p < prev {
				return nil, fmt.Errorf("leapfrog: trie %d attrs %v not sorted by order %v", ti, t.Attrs, order)
			}
			prev = p
		}
		it := trie.NewIterator(t)
		j.iters = append(j.iters, it)
		for _, a := range t.Attrs {
			j.active[pos[a]] = append(j.active[pos[a]], it)
		}
	}
	for d, as := range j.active {
		if len(as) == 0 {
			return nil, fmt.Errorf("leapfrog: attribute %q not covered by any relation", order[d])
		}
	}
	return j, nil
}

// run executes the join iteratively.
func (j *joiner) run(opt Options) (Stats, error) {
	st := Stats{LevelTuples: make([]int64, j.n), LevelSeeks: make([]int64, j.n)}
	// Empty relation: no results.
	for _, it := range j.iters {
		_ = it
	}
	lf := make([]*frame, j.n)
	for d := range lf {
		lf[d] = &frame{iters: j.active[d]}
	}
	var work int64
	d := 0
	if !lf[0].open(&st, 0) {
		return st, nil
	}
	if opt.FirstFixed != nil {
		if !lf[0].seekExact(*opt.FirstFixed, &st, 0) {
			return st, nil
		}
	}
	for d >= 0 {
		f := lf[d]
		if f.atEnd {
			// Exhausted this level: go up and advance.
			f.close()
			d--
			if d >= 0 {
				if opt.FirstFixed != nil && d == 0 {
					// Constrained run: only the fixed value at level 0.
					lf[0].atEnd = true
					continue
				}
				lf[d].next(&st, d)
			}
			continue
		}
		// A value is bound at depth d.
		j.binding[d] = f.key
		st.LevelTuples[d]++
		work++
		if opt.Budget > 0 && work > opt.Budget {
			return st, ErrBudget
		}
		if d == j.n-1 {
			st.Results++
			if opt.Emit != nil {
				opt.Emit(j.binding)
			}
			f.next(&st, d)
			continue
		}
		// Descend.
		d++
		lf[d].open(&st, d)
	}
	return st, nil
}

// frame is the leapfrog state for one depth: the classic ring of iterators.
type frame struct {
	iters []*trie.Iterator
	p     int
	key   Value
	atEnd bool
	open_ bool
}

// open descends all active iterators and runs leapfrog-init. Returns false
// when the intersection is immediately empty.
func (f *frame) open(st *Stats, d int) bool {
	for _, it := range f.iters {
		it.Open()
	}
	f.open_ = true
	f.atEnd = false
	for _, it := range f.iters {
		if it.AtEnd() {
			f.atEnd = true
			return false
		}
	}
	// Sort iterators by current key (ring invariant).
	sort.Slice(f.iters, func(a, b int) bool { return f.iters[a].Key() < f.iters[b].Key() })
	f.p = 0
	f.search(st, d)
	return !f.atEnd
}

// close pops all active iterators back to the parent level.
func (f *frame) close() {
	if !f.open_ {
		return
	}
	for _, it := range f.iters {
		it.Up()
	}
	f.open_ = false
}

// search is leapfrog-search: advance the ring until all keys agree.
func (f *frame) search(st *Stats, d int) {
	k := len(f.iters)
	xPrime := f.iters[(f.p+k-1)%k].Key()
	for {
		x := f.iters[f.p].Key()
		if x == xPrime {
			f.key = x
			return
		}
		f.iters[f.p].Seek(xPrime)
		st.LevelSeeks[d]++
		if f.iters[f.p].AtEnd() {
			f.atEnd = true
			return
		}
		xPrime = f.iters[f.p].Key()
		f.p = (f.p + 1) % k
	}
}

// next is leapfrog-next: advance past the current match.
func (f *frame) next(st *Stats, d int) {
	f.iters[f.p].Next()
	st.LevelSeeks[d]++
	if f.iters[f.p].AtEnd() {
		f.atEnd = true
		return
	}
	f.p = (f.p + 1) % len(f.iters)
	f.search(st, d)
}

// seekExact positions the level at exactly v; returns false if v is not in
// the intersection.
func (f *frame) seekExact(v Value, st *Stats, d int) bool {
	for !f.atEnd && f.key < v {
		// Seek all iterators to v then re-search.
		f.iters[f.p].Seek(v)
		st.LevelSeeks[d]++
		if f.iters[f.p].AtEnd() {
			f.atEnd = true
			return false
		}
		f.p = (f.p + 1) % len(f.iters)
		f.search(st, d)
	}
	if f.atEnd || f.key != v {
		f.atEnd = true
		return false
	}
	return true
}
