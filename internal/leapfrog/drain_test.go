package leapfrog

import (
	"errors"
	"testing"

	"adj/internal/relation"
	"adj/internal/trie"
)

// Regression: an empty trie in a ring (a relation with no fragment in a
// cube) must yield zero results — not desync iterator depths and panic.
// The empty trie sits in the middle of the order so its frame's early
// bail-out happens with other iterators already descended.
func TestJoinWithEmptyTrie(t *testing.T) {
	r := relation.FromTuples("R", []string{"a", "b"}, [][]relation.Value{{1, 2}, {1, 3}, {2, 3}})
	s := relation.New("S", "b", "c") // empty
	tt := relation.FromTuples("T", []string{"a", "c"}, [][]relation.Value{{1, 3}, {2, 3}})
	order := []string{"a", "b", "c"}
	tries := []*trie.Trie{
		trie.Build(r, []string{"a", "b"}),
		trie.Build(s, []string{"b", "c"}),
		trie.Build(tt, []string{"a", "c"}),
	}
	st, err := Join(tries, order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != 0 {
		t.Fatalf("results=%d want 0", st.Results)
	}
}

// The leaf drain must stop at the budget instead of consuming an entire
// skewed intersection first.
func TestDrainRespectsBudget(t *testing.T) {
	r := relation.New("R", "a", "b")
	s := relation.New("S", "b", "c")
	for i := relation.Value(0); i < 1000; i++ {
		r.Append(1, i%3)
		s.Append(i%3, i)
	}
	order := []string{"a", "b", "c"}
	tries := BuildTries([]*relation.Relation{r, s}, order)
	st, err := Join(tries, order, Options{Budget: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v want ErrBudget", err)
	}
	// Work done before bailing must be on the order of the budget, not the
	// full ~1000-result leaf intersection.
	if total := st.TotalWithResults(); total > 30 {
		t.Fatalf("did %d work units before budget bail-out (budget 10)", total)
	}
}
