package leapfrog

import (
	"fmt"
	"sort"

	"adj/internal/relation"
	"adj/internal/trie"
)

// Extender answers "given a partial binding of the first d attributes of
// the global order, which values of attribute d+1 join with it?" — the
// val(t_i → A_{i+1}) primitive of Alg. 1. BigJoin uses it to extend
// distributed partial bindings one attribute per round, and the sampler
// uses it to count extensions per level.
type Extender struct {
	order []string
	pos   map[string]int
	// rels[d] lists, for each depth, the tries of relations containing
	// order[d], with the positions (in the global order) of their attributes.
	rels [][]extRel
	// lists/cursors/runBuf are DrainLeaf scratch (an Extender serves one
	// join at a time; it is not safe for concurrent use).
	lists   [][]Value
	cursors []int
	runBuf  []Value
}

type extRel struct {
	t *trie.Trie
	// attrPos are the global-order positions of the trie's attributes.
	attrPos []int
}

// NewExtender prepares tries for extension queries. Tries must come from
// BuildTries(rels, order).
func NewExtender(tries []*trie.Trie, order []string) (*Extender, error) {
	e := &Extender{order: order, pos: make(map[string]int, len(order))}
	for i, a := range order {
		e.pos[a] = i
	}
	e.rels = make([][]extRel, len(order))
	for _, t := range tries {
		ap := make([]int, len(t.Attrs))
		for i, a := range t.Attrs {
			p, ok := e.pos[a]
			if !ok {
				return nil, fmt.Errorf("extender: attribute %q not in order %v", a, order)
			}
			ap[i] = p
		}
		if !sort.IntsAreSorted(ap) {
			return nil, fmt.Errorf("extender: trie attrs %v not sorted by order", t.Attrs)
		}
		er := extRel{t: t, attrPos: ap}
		for _, p := range ap {
			e.rels[p] = append(e.rels[p], er)
		}
	}
	return e, nil
}

// Extend returns the sorted values v of attribute order[d] such that the
// binding (values for order[0..d-1]) extended with v satisfies every
// relation containing order[d], restricted to its bound attributes. The
// second return is the number of candidate values scanned (seek work).
func (e *Extender) Extend(binding []Value, d int) ([]Value, int64) {
	var lists [][]Value
	var work int64
	for _, er := range e.rels[d] {
		vals, w := er.candidates(binding, d)
		work += w
		if vals == nil {
			return nil, work
		}
		lists = append(lists, vals)
	}
	if len(lists) == 0 {
		return nil, work
	}
	// Intersect smallest-first.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = relation.IntersectSorted(acc, l)
		work += int64(len(acc))
		if len(acc) == 0 {
			return []Value{}, work
		}
	}
	// acc may alias trie storage; copy so callers can retain it.
	out := append([]Value(nil), acc...)
	return out, work
}

// candidates walks er's trie down the bound prefix and returns the child
// values at the level corresponding to global attribute d. Returns nil when
// the bound prefix is absent from the relation (no extension possible), and
// an empty non-nil slice for "present but no children" (cannot happen in a
// static trie, kept for clarity).
func (er extRel) candidates(binding []Value, d int) ([]Value, int64) {
	var node int32 // node position at current level
	var work int64
	level := -1 // trie level of the last matched attribute
	for i, p := range er.attrPos {
		if p == d {
			// All earlier trie levels are bound (trie attrs sorted by global
			// order and relations containing d must have their earlier attrs
			// among the bound prefix).
			return er.childValues(i, level, node), work
		}
		if p > d {
			break
		}
		// Attribute p is bound: descend by binary search.
		vals := er.childValues(i, level, node)
		idx := sort.Search(len(vals), func(k int) bool { return vals[k] >= binding[p] })
		work++
		if idx == len(vals) || vals[idx] != binding[p] {
			return nil, work
		}
		l := er.t.Levels[i]
		var base int32
		if i == 0 {
			base = l.Starts[0]
		} else {
			base = l.Starts[node]
		}
		node = base + int32(idx)
		level = i
	}
	// d not an attribute of this relation (callers prevent this).
	return nil, work
}

// childValues returns the children at trie level i under the node reached
// at level `level` (with position `node`); level -1 means the root.
func (er extRel) childValues(i, level int, node int32) []Value {
	l := er.t.Levels[i]
	if level < 0 {
		return l.Vals[l.Starts[0]:l.Starts[1]]
	}
	return l.Vals[l.Starts[node]:l.Starts[node+1]]
}

// DrainLeaf streams the intersection Extend(binding, d) would materialize
// straight into sink — the cached join's leaf-level analogue of the plain
// joiner's frame.drain, with the same batched convention: the matched
// values reach the sink as at most one run under the prefix binding[:d]
// (sink may be nil for counting runs; the nil check happens once, not per
// value). The candidate lists stay slices into trie storage and the
// intersection runs as a multi-pointer leapfrog over them; the
// single-list case hands trie storage to the sink directly, the others
// stage matches in reused scratch. A non-negative limit stops the drain
// once that many values are taken (the caller's remaining work budget).
// Counts are identical with and without a sink. Returns the number of
// values matched and the seek work performed.
func (e *Extender) DrainLeaf(binding []Value, d int, limit int64, sink Sink) (int64, int64) {
	lists := e.lists[:0]
	var work int64
	for _, er := range e.rels[d] {
		vals, w := er.candidates(binding, d)
		work += w
		if len(vals) == 0 {
			e.lists = lists[:0]
			return 0, work
		}
		lists = append(lists, vals)
	}
	e.lists = lists // keep grown scratch
	if len(lists) == 0 {
		return 0, work
	}
	if sink != nil {
		sink.BeginRun(binding[:d])
	}
	var count int64
	switch len(lists) {
	case 1:
		vals := lists[0]
		if limit >= 0 && int64(len(vals)) > limit {
			vals = vals[:limit]
		}
		if sink != nil {
			sink.AppendRun(vals)
		}
		count = int64(len(vals))
	case 2:
		v0, v1 := lists[0], lists[1]
		run := e.runBuf[:0]
		var p0, p1 int
		k0, k1 := v0[0], v1[0]
		for limit < 0 || count < limit {
			if k0 == k1 {
				if sink != nil {
					run = append(run, k0)
				}
				count++
				p0++
				p1++
				if p0 >= len(v0) || p1 >= len(v1) {
					break
				}
				k0, k1 = v0[p0], v1[p1]
			} else if k0 < k1 {
				p0 = seekSlice(v0, p0, k1)
				work++
				if p0 >= len(v0) {
					break
				}
				k0 = v0[p0]
			} else {
				p1 = seekSlice(v1, p1, k0)
				work++
				if p1 >= len(v1) {
					break
				}
				k1 = v1[p1]
			}
		}
		if sink != nil && len(run) > 0 {
			sink.AppendRun(run)
		}
		e.runBuf = run[:0]
	default:
		// Generalized leapfrog ring over k sorted slices: chase the max key
		// until all cursors agree, collect, advance.
		k := len(lists)
		if cap(e.cursors) < k {
			e.cursors = make([]int, k)
		}
		pos := e.cursors[:k]
		for i := range pos {
			pos[i] = 0
		}
		run := e.runBuf[:0]
		hi := lists[0][0]
		for i := 1; i < k; i++ {
			if v := lists[i][0]; v > hi {
				hi = v
			}
		}
		ring := 0
	drain:
		for limit < 0 || count < limit {
			matched := 0
			for matched < k {
				vals := lists[ring]
				if vals[pos[ring]] < hi {
					pos[ring] = seekSlice(vals, pos[ring], hi)
					work++
					if pos[ring] >= len(vals) {
						break drain
					}
				}
				if v := vals[pos[ring]]; v > hi {
					hi = v
					matched = 1
				} else {
					matched++
				}
				ring++
				if ring == k {
					ring = 0
				}
			}
			if sink != nil {
				run = append(run, hi)
			}
			count++
			// Advance one cursor past the match and restart the pursuit.
			pos[ring]++
			if pos[ring] >= len(lists[ring]) {
				break
			}
			hi = lists[ring][pos[ring]]
		}
		if sink != nil && len(run) > 0 {
			sink.AppendRun(run)
		}
		e.runBuf = run[:0]
	}
	return count, work
}

// CountPerLevel runs a full (budgeted) traversal counting partial bindings
// per level without materializing them, starting from the given first-level
// values (or all when firstVals is nil). The sampler uses it with a handful
// of sampled first values; Fig. 6 uses it with all of them. Leaf levels
// count through the streaming drain (no value-list materialization).
func (e *Extender) CountPerLevel(firstVals []Value, budget int64) (levels []int64, truncated bool) {
	n := len(e.order)
	levels = make([]int64, n)
	binding := make([]Value, n)
	var work int64
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == n {
			return true
		}
		if d == n-1 && !(d == 0 && firstVals != nil) {
			limit := int64(-1)
			if budget > 0 {
				limit = budget - work + 1
			}
			cnt, _ := e.DrainLeaf(binding, d, limit, nil)
			levels[d] += cnt
			work += cnt
			return budget <= 0 || work <= budget
		}
		var vals []Value
		if d == 0 && firstVals != nil {
			vals = firstVals
		} else {
			vals, _ = e.Extend(binding, d)
		}
		for _, v := range vals {
			binding[d] = v
			levels[d]++
			work++
			if budget > 0 && work > budget {
				return false
			}
			if !rec(d + 1) {
				return false
			}
		}
		return true
	}
	completed := rec(0)
	return levels, !completed
}
