package leapfrog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/testutil"
)

func TestTriangleSmall(t *testing.T) {
	e := [][]Value{{1, 2}, {2, 3}, {1, 3}, {3, 1}, {2, 1}}
	r1 := relation.FromTuples("R1", []string{"a", "b"}, e)
	r2 := relation.FromTuples("R2", []string{"b", "c"}, e)
	r3 := relation.FromTuples("R3", []string{"a", "c"}, e)
	rels := []*relation.Relation{r1, r2, r3}
	order := []string{"a", "b", "c"}
	var got [][]Value
	st, err := JoinRelations(rels, order, Options{Emit: func(tp relation.Tuple) {
		got = append(got, append([]Value(nil), tp...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NaiveJoin(rels, order)
	if int(st.Results) != want.Len() {
		t.Fatalf("results=%d want %d", st.Results, want.Len())
	}
	if want.Len() == 0 {
		t.Fatal("instance should have triangles")
	}
	gotRel := relation.FromTuples("g", order, got).SortDedup()
	if !gotRel.Equal(want.Renamed("g")) {
		t.Fatalf("tuples mismatch:\n%v\nvs\n%v", gotRel, want)
	}
}

func TestPaperRunningExample(t *testing.T) {
	// Fig. 2 / Fig. 3: query Eq.(2) over the 5 example relations; server S0
	// in Fig. 3(b) finds T5 = {(1,2,2,1,1),(1,2,2,2,...)}. We check the full
	// (non-partitioned) join against the naive oracle.
	q := hypergraph.PaperExample()
	db := hypergraph.Database{
		"R1": relation.FromTuples("R1", []string{"a", "b", "c"}, [][]Value{{1, 2, 2}, {1, 2, 1}, {2, 1, 1}, {1, 4, 1}}),
		"R2": relation.FromTuples("R2", []string{"a", "d"}, [][]Value{{1, 1}, {2, 1}, {3, 1}, {1, 4}}),
		"R3": relation.FromTuples("R3", []string{"c", "d"}, [][]Value{{1, 1}, {2, 1}, {1, 2}, {2, 2}}),
		"R4": relation.FromTuples("R4", []string{"b", "e"}, [][]Value{{3, 2}, {4, 2}, {5, 2}, {4, 1}}),
		"R5": relation.FromTuples("R5", []string{"c", "e"}, [][]Value{{4, 1}, {5, 1}, {3, 2}, {4, 2}}),
	}
	rels, err := q.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"a", "b", "c", "d", "e"}
	st, err := JoinRelations(rels, order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NaiveJoin(rels, order)
	if int(st.Results) != want.Len() {
		t.Fatalf("results=%d want %d", st.Results, want.Len())
	}
}

// The central correctness property: Leapfrog == naive join on random
// queries and databases, across random attribute orders.
func TestLeapfrogMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandQueryInstance(rng, 4, 4, 25, 6)
		attrs := q.Attrs()
		// Random permutation as the global order.
		order := append([]string(nil), attrs...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		st, err := JoinRelations(rels, order, Options{})
		if err != nil {
			return false
		}
		want := relation.NaiveJoin(rels, attrs)
		return int(st.Results) == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitTuplesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, rels := testutil.RandQueryInstance(rng, 3, 3, 30, 5)
	order := q.Attrs()
	out := relation.New("out", order...)
	_, err := JoinRelations(rels, order, Options{Emit: func(tp relation.Tuple) {
		out.AppendTuple(tp)
	}})
	if err != nil {
		t.Fatal(err)
	}
	out.SortDedup()
	want := relation.NaiveJoin(rels, order).Renamed("out")
	if !out.Equal(want) {
		t.Fatalf("emitted tuples mismatch: %d vs %d", out.Len(), want.Len())
	}
}

func TestEmptyInput(t *testing.T) {
	r1 := relation.New("R1", "a", "b")
	r2 := relation.FromTuples("R2", []string{"b", "c"}, [][]Value{{1, 2}})
	st, err := JoinRelations([]*relation.Relation{r1, r2}, []string{"a", "b", "c"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != 0 {
		t.Fatalf("results=%d want 0", st.Results)
	}
}

func TestUncoveredAttributeError(t *testing.T) {
	r1 := relation.FromTuples("R1", []string{"a"}, [][]Value{{1}})
	_, err := JoinRelations([]*relation.Relation{r1}, []string{"a", "zz"}, Options{})
	if err == nil {
		t.Fatal("expected error for uncovered attribute")
	}
}

func TestBudgetEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	_, err := JoinRelations(rels, []string{"a", "b", "c"}, Options{Budget: 10})
	if err != ErrBudget {
		t.Fatalf("err=%v want ErrBudget", err)
	}
}

func TestFirstFixedMatchesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := testutil.RandEdges(rng, "E", 300, 20)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := []string{"a", "b", "c"}
	// Ground truth per a-value via naive join.
	want := relation.NaiveJoin(rels, order)
	counts := make(map[Value]int64)
	for i := 0; i < want.Len(); i++ {
		counts[want.Tuple(i)[0]]++
	}
	tries := BuildTries(rels, order)
	for v := Value(0); v < 20; v++ {
		vv := v
		st, err := Join(tries, order, Options{FirstFixed: &vv})
		if err != nil {
			t.Fatal(err)
		}
		if st.Results != counts[v] {
			t.Fatalf("a=%d: results=%d want %d", v, st.Results, counts[v])
		}
	}
}

func TestLevelTuplesMonotoneSemantics(t *testing.T) {
	// LevelTuples[last] must equal Results; all counters non-negative.
	rng := rand.New(rand.NewSource(9))
	q, rels := testutil.RandQueryInstance(rng, 4, 4, 40, 6)
	order := q.Attrs()
	st, err := JoinRelations(rels, order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LevelTuples[len(order)-1] != st.Results {
		t.Fatalf("last level %d != results %d", st.LevelTuples[len(order)-1], st.Results)
	}
	if st.Total() < 0 || st.TotalWithResults() != st.Total()+st.Results {
		t.Fatal("stats accounting broken")
	}
}

func TestCachedJoinMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandQueryInstance(rng, 4, 4, 25, 5)
		order := q.Attrs()
		tries := BuildTries(rels, order)
		plain, err := Join(tries, order, Options{})
		if err != nil {
			return false
		}
		cj := NewCachedJoin(tries, order, 1<<20)
		cached, err := cj.Run(Options{})
		if err != nil {
			return false
		}
		return plain.Results == cached.Results
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCachedJoinZeroBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	edges := testutil.RandEdges(rng, "E", 400, 25)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	tries := BuildTries(rels, order)
	plain, _ := Join(tries, order, Options{})
	cj := NewCachedJoin(tries, order, 0)
	st, err := cj.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != plain.Results {
		t.Fatalf("uncached run wrong: %d vs %d", st.Results, plain.Results)
	}
	if cj.Hits != 0 {
		t.Fatalf("budget 0 must never hit, got %d", cj.Hits)
	}
}

func TestCachedJoinGetsHits(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	edges := testutil.RandEdges(rng, "E", 600, 20)
	q := hypergraph.Q4() // 5-cycle + chord: repeated sub-bindings
	rels := q.BindGraph(edges)
	order := q.Attrs()
	tries := BuildTries(rels, order)
	cj := NewCachedJoin(tries, order, 1<<22)
	if _, err := cj.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if cj.Hits == 0 {
		t.Fatal("expected cache hits on a cyclic query with a dense graph")
	}
}

func TestExtenderMatchesLeapfrogLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := testutil.RandEdges(rng, "E", 500, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := []string{"a", "b", "c"}
	tries := BuildTries(rels, order)
	ext, err := NewExtender(tries, order)
	if err != nil {
		t.Fatal(err)
	}
	levels, trunc := ext.CountPerLevel(nil, 0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	st, _ := Join(tries, order, Options{})
	if !reflect.DeepEqual(levels, st.LevelTuples) {
		t.Fatalf("extender levels %v != leapfrog levels %v", levels, st.LevelTuples)
	}
}

func TestExtendStepwise(t *testing.T) {
	r1 := relation.FromTuples("R1", []string{"a", "b"}, [][]Value{{1, 2}, {1, 3}, {2, 4}})
	r2 := relation.FromTuples("R2", []string{"b", "c"}, [][]Value{{2, 5}, {3, 5}, {4, 6}})
	order := []string{"a", "b", "c"}
	tries := BuildTries([]*relation.Relation{r1, r2}, order)
	ext, err := NewExtender(tries, order)
	if err != nil {
		t.Fatal(err)
	}
	as, _ := ext.Extend([]Value{0, 0, 0}, 0)
	if !reflect.DeepEqual(as, []Value{1, 2}) {
		t.Fatalf("a candidates=%v", as)
	}
	bs, _ := ext.Extend([]Value{1, 0, 0}, 1)
	if !reflect.DeepEqual(bs, []Value{2, 3}) {
		t.Fatalf("b|a=1 =%v", bs)
	}
	cs, _ := ext.Extend([]Value{1, 2, 0}, 2)
	if !reflect.DeepEqual(cs, []Value{5}) {
		t.Fatalf("c|a=1,b=2 =%v", cs)
	}
	// Binding absent from R1.
	if got, _ := ext.Extend([]Value{9, 0, 0}, 1); len(got) != 0 {
		t.Fatalf("b|a=9 should be empty, got %v", got)
	}
}

func TestExtenderBudgetTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	edges := testutil.RandEdges(rng, "E", 2000, 30)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	ext, err := NewExtender(BuildTries(rels, order), order)
	if err != nil {
		t.Fatal(err)
	}
	_, trunc := ext.CountPerLevel(nil, 5)
	if !trunc {
		t.Fatal("tiny budget should truncate")
	}
}

// Mixed-arity property: Leapfrog must match the oracle when atoms have
// arity 1–3 (the paper's running example mixes arities).
func TestLeapfrogMixedArityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandMixedQueryInstance(rng, 4, 4, 25, 5)
		order := q.Attrs()
		st, err := JoinRelations(rels, order, Options{})
		if err != nil {
			return false
		}
		want := relation.NaiveJoin(rels, order)
		return int(st.Results) == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Extender must agree with Leapfrog's levels on mixed arities too.
func TestExtenderMixedArityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandMixedQueryInstance(rng, 3, 4, 20, 5)
		order := q.Attrs()
		tries := BuildTries(rels, order)
		ext, err := NewExtender(tries, order)
		if err != nil {
			return false
		}
		levels, trunc := ext.CountPerLevel(nil, 0)
		if trunc {
			return false
		}
		st, err := Join(tries, order, Options{})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(levels, st.LevelTuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
