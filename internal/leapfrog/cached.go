package leapfrog

import (
	"sort"

	"adj/internal/trie"
)

// CachedJoin is the CacheTrieJoin-style variant (Kalinsky et al., §VI of
// the paper): Leapfrog with per-level memoization of intersections. The
// intersection computed at depth d depends only on the positions of the
// participating iterators' parent nodes, so those positions form the cache
// key. The cache is bounded; once a level's budget is exhausted new entries
// are not inserted — mirroring the paper's observation that HCubeJ+Cache
// degrades when HCube's memory use starves the cache.
type CachedJoin struct {
	order []string
	// perLevel[d] holds the tries active at depth d.
	perLevel [][]*trie.Trie
	tries    []*trie.Trie
	// relevant[d][i] marks bound positions i < d that level d's
	// intersection depends on (precomputed once; cacheKey is hot).
	relevant [][]bool
	// keyBuf is reused scratch for cache-key encoding.
	keyBuf []byte
	// CacheBudget is the maximum number of cached values per level.
	CacheBudget int
	// Hits and Misses are cache statistics for the ablation bench.
	Hits, Misses int64
}

// NewCachedJoin prepares a cached join over tries built by BuildTries.
// cacheBudget is the per-level cap on cached values (0 disables caching:
// inner levels degenerate to materialized intersections and the leaf
// level to the plain joiner's streaming drain). Once a level's budget is
// exhausted, leaf misses likewise stop materializing value lists and
// drain the intersection directly — the saturated-cache steady state the
// paper's HCubeJ+Cache starvation analysis describes.
func NewCachedJoin(tries []*trie.Trie, order []string, cacheBudget int) *CachedJoin {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	c := &CachedJoin{order: order, tries: tries, CacheBudget: cacheBudget}
	c.perLevel = make([][]*trie.Trie, len(order))
	for _, t := range tries {
		for _, a := range t.Attrs {
			c.perLevel[pos[a]] = append(c.perLevel[pos[a]], t)
		}
	}
	c.relevant = make([][]bool, len(order))
	for d := range c.relevant {
		rel := make([]bool, d)
		for _, t := range c.perLevel[d] {
			for _, a := range t.Attrs {
				if p := pos[a]; p < d {
					rel[p] = true
				}
			}
		}
		c.relevant[d] = rel
	}
	return c
}

// Run executes the cached join; semantics match Join. Leaf results reach
// the sink as runs: materialized (or cached) leaf value lists are handed
// over whole, and the budget-saturated miss path streams through the
// extender's drain — either way no per-tuple callback runs outside the
// legacy Emit shim.
func (c *CachedJoin) Run(opt Options) (Stats, error) {
	ext, err := NewExtender(c.tries, c.order)
	if err != nil {
		return Stats{}, err
	}
	n := len(c.order)
	st := Stats{LevelTuples: make([]int64, n), LevelSeeks: make([]int64, n)}
	var fsink funcSink
	sink := sinkOf(opt, &fsink)
	caches := make([]map[string][]Value, n)
	cacheSize := make([]int, n)
	for d := range caches {
		caches[d] = make(map[string][]Value)
	}
	binding := make([]Value, n)
	var work int64
	// emitLeafRun delivers a materialized leaf value list as one run under
	// the current binding prefix, truncating at the work budget with the
	// exact per-value semantics of the legacy loop: the value that trips
	// the budget is counted at its level but not emitted as a result.
	emitLeafRun := func(d int, vals []Value) error {
		take := int64(len(vals))
		over := false
		if opt.Budget > 0 && work+take > opt.Budget {
			take = opt.Budget - work
			over = true
		}
		if sink != nil && take > 0 {
			sink.BeginRun(binding[:d])
			deliver(sink, &st, vals[:take])
		}
		st.LevelTuples[d] += take
		st.Results += take
		work += take
		if over {
			st.LevelTuples[d]++
			work++
			return ErrBudget
		}
		return nil
	}
	var steps int
	var rec func(d int) error
	rec = func(d int) error {
		if opt.Cancel != nil {
			if steps%cancelStride == 0 && opt.Cancel() {
				return ErrCanceled
			}
			steps++
		}
		var vals []Value
		// Cache key: the bound values of attributes < d that are relevant to
		// level d's intersection (attributes shared with any relation active
		// at d). Using the full relevant prefix is correct and simpler than
		// node positions.
		key := c.cacheKey(binding, d)
		if cached, ok := caches[d][key]; ok {
			c.Hits++
			vals = cached
		} else {
			c.Misses++
			if d == n-1 && (c.CacheBudget <= 0 || cacheSize[d] >= c.CacheBudget) {
				// Leaf level with caching disabled or the level's budget
				// exhausted: nothing could be inserted, so skip the value
				// list entirely and drain the intersection in one streaming
				// pass (the plain joiner's leaf drain), capped at the
				// remaining work budget.
				limit := int64(-1)
				if opt.Budget > 0 {
					limit = opt.Budget - work + 1
				}
				cnt, w := ext.DrainLeaf(binding, d, limit, sink)
				st.LevelSeeks[d] += w
				st.LevelTuples[d] += cnt
				st.Results += cnt
				work += cnt
				if sink != nil && cnt > 0 {
					st.EmittedRuns++
					st.EmittedValues += cnt
				}
				if opt.Budget > 0 && work > opt.Budget {
					return ErrBudget
				}
				return nil
			}
			var w int64
			vals, w = ext.Extend(binding, d)
			st.LevelSeeks[d] += w
			if c.CacheBudget > 0 && cacheSize[d]+len(vals) <= c.CacheBudget {
				caches[d][key] = vals
				cacheSize[d] += len(vals)
			}
		}
		if d == n-1 {
			return emitLeafRun(d, vals)
		}
		for _, v := range vals {
			binding[d] = v
			st.LevelTuples[d]++
			work++
			if opt.Budget > 0 && work > opt.Budget {
				return ErrBudget
			}
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if opt.FirstFixed != nil {
		first, w := ext.Extend(binding, 0)
		st.LevelSeeks[0] += w
		idx := sort.Search(len(first), func(i int) bool { return first[i] >= *opt.FirstFixed })
		if idx == len(first) || first[idx] != *opt.FirstFixed {
			return st, nil
		}
		binding[0] = *opt.FirstFixed
		st.LevelTuples[0]++
		if n == 1 {
			st.Results++
			if sink != nil {
				sink.BeginRun(binding[:0])
				deliver(sink, &st, binding[:1])
			}
			return st, nil
		}
		err = rec(1)
		return st, err
	}
	err = rec(0)
	return st, err
}

// cacheKey serializes the bound values relevant to depth d into the
// reusable key buffer (the returned string still copies — it is the map
// key — but no intermediate allocations remain).
func (c *CachedJoin) cacheKey(binding []Value, d int) string {
	if cap(c.keyBuf) < 8*d {
		c.keyBuf = make([]byte, 8*d)
	}
	b := c.keyBuf[:8*d]
	for i := 0; i < d; i++ {
		v := Value(-1 << 62) // neutral marker keeps key width fixed
		if c.relevant[d][i] {
			v = binding[i]
		}
		u := uint64(v)
		o := i * 8
		b[o] = byte(u >> 56)
		b[o+1] = byte(u >> 48)
		b[o+2] = byte(u >> 40)
		b[o+3] = byte(u >> 32)
		b[o+4] = byte(u >> 24)
		b[o+5] = byte(u >> 16)
		b[o+6] = byte(u >> 8)
		b[o+7] = byte(u)
	}
	return string(b)
}
