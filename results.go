package adj

import (
	"fmt"

	"adj/internal/relation"
)

// Results is an execution's outcome: the run report plus a streaming,
// run-aware iterator over the materialized result relation.
//
// Results arrive from the engines as prefix-replicated runs — all output
// tuples sharing a binding of the first k-1 attributes, differing only in
// the last — and NextRun surfaces exactly that structure without ever
// materializing row-major tuples: the prefix is one k-1 tuple, the values
// are a zero-copy slice of the result's last column. Rows materializes the
// compatibility view for callers that want a plain Relation.
type Results struct {
	rep Report
	out *relation.Relation
	// iteration state over the columnar output
	cols   [][]Value
	prefix []Value // reused across NextRun calls (the documented aliasing)
	row    int
}

func newResults(rep Report) *Results {
	return &Results{rep: rep, out: rep.Output}
}

// Report returns the execution's full report (counters, cost breakdown,
// plan, cache statistics, and — for session executions — the serving-tier
// fields QueueSeconds and AdmissionClass).
func (r *Results) Report() Report { return r.rep }

// QueueSeconds is how long this execution waited in the admission queue
// before a pool cluster freed (0 when a slot was free on arrival).
func (r *Results) QueueSeconds() float64 { return r.rep.QueueSeconds }

// Count returns the number of result tuples (available on CountOnly runs
// too).
func (r *Results) Count() int64 { return r.rep.Results }

// Err returns the execution's terminal status.
//
// Contract: Exec never returns a Results for a failed or cancelled
// execution — those return (nil, error), and an error from Exec means no
// partial output exists anywhere. The one degraded case that does produce
// a Results is a budget/memory failure (Report.Failed — the paper's
// frame-top bars), which the engines report as data, not as an error. Err
// makes that case visible to streaming consumers that only see the
// iterator: it returns nil when the run completed (NextRun's ok=false then
// means "result set exhausted" or CountOnly), and the failure otherwise
// (ok=false then means "the run did not finish"). Err is valid at any
// point of iteration and does not change with iterator position.
func (r *Results) Err() error {
	if r.rep.Failed {
		return fmt.Errorf("adj: %s run on %s failed: %s", r.rep.Engine, r.rep.Query, r.rep.FailReason)
	}
	return nil
}

// Attrs returns the result schema in the execution's attribute order, or
// nil for CountOnly runs.
func (r *Results) Attrs() []string {
	if r.out == nil {
		return nil
	}
	return r.out.Attrs
}

// NextRun returns the next result run: the shared prefix (all attributes
// but the last, aliasing iterator-internal storage) and the run's values
// for the last attribute (a zero-copy slice of the result's last column).
// ok is false when the results are exhausted — or were never materialized
// (CountOnly). Copy both slices to retain them across calls.
func (r *Results) NextRun() (prefix []Value, values []Value, ok bool) {
	if r.out == nil || r.out.Len() == 0 {
		return nil, nil, false
	}
	if r.cols == nil {
		r.cols = r.out.Columns()
	}
	n := r.out.Len()
	if r.row >= n {
		return nil, nil, false
	}
	k := len(r.cols)
	i := r.row
	j := i + 1
	// A run extends while every prefix column repeats its value at i.
scan:
	for ; j < n; j++ {
		for c := 0; c < k-1; c++ {
			if r.cols[c][j] != r.cols[c][i] {
				break scan
			}
		}
	}
	if r.prefix == nil {
		r.prefix = make([]Value, k-1)
	}
	for c := 0; c < k-1; c++ {
		r.prefix[c] = r.cols[c][i]
	}
	values = r.cols[k-1][i:j:j]
	r.row = j
	return r.prefix, values, true
}

// Rows returns the materialized result relation — the compatibility view
// matching the old CollectOutput behavior. It returns nil on CountOnly
// executions. The relation is the execution's own output; do not mutate it
// while also iterating runs.
func (r *Results) Rows() *Relation { return r.out }

// Reset rewinds the run iterator to the first result.
func (r *Results) Reset() { r.row = 0 }
