module adj

go 1.24
