// Complex subgraph matching: the 5-node chorded-cycle patterns (Q4–Q6)
// that motivate ADJ. On these queries the computation cost of a plain
// one-round join dominates, and ADJ's optimizer decides to pre-compute GHD
// bags — trading some communication and pre-computing for a much smaller
// Leapfrog. The example prepares each pattern once on a resident session
// (Prepare is where the plan you see gets chosen and its sampling paid),
// prints the chosen plans and cost breakdowns, then runs an ad-hoc pattern
// over individually registered relations.
package main

import (
	"context"
	"fmt"
	"log"

	"adj"
)

func main() {
	edges := adj.GenerateGraph("LJ", 0.1)
	fmt.Printf("social graph: %d edges\n\n", edges.Len())

	sess, err := adj.Open(adj.Options{Workers: 8, Samples: 400, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Register("edges", edges); err != nil {
		log.Fatal(err)
	}

	for _, qn := range []string{"Q4", "Q5", "Q6"} {
		q := adj.CatalogQuery(qn)
		fmt.Println("query:", q)

		pq, err := sess.PrepareGraph("ADJ", q, "edges")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("plan: ", pq.Plan())

		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report()
		fmt.Printf("matches=%d  prepare=%.3fs pre=%.3fs comm=%.3fs comp=%.3fs\n\n",
			res.Count(), pq.PlanSeconds(), rep.PreComputing, rep.Communication, rep.Computation)
	}

	// Ad-hoc pattern: a "diamond" with an apex — written directly in the
	// paper's query notation and run over two different relations, each
	// registered once and shared by two atoms.
	fmt.Println("--- ad-hoc query over a custom database ---")
	q, err := adj.ParseQuery("Diamond :- Follows(a,b) ⋈ Follows2(a,c) ⋈ Likes(b,d) ⋈ Likes2(c,d)")
	if err != nil {
		log.Fatal(err)
	}
	follows := adj.GenerateGraph("WB", 0.05)
	likes := adj.GenerateGraph("AS", 0.05)
	if err := sess.RegisterDatabase(adj.Database{
		"Follows": follows, "Follows2": follows,
		"Likes": likes, "Likes2": likes,
	}); err != nil {
		log.Fatal(err)
	}
	pq, err := sess.Prepare("ADJ", q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pq.Exec(context.Background(), adj.CountOnly())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -> %d matches in %.3fs\n", q, res.Count(), res.Report().Total())
}
