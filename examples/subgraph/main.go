// Complex subgraph matching: the 5-node chorded-cycle patterns (Q4–Q6)
// that motivate ADJ. On these queries the computation cost of a plain
// one-round join dominates, and ADJ's optimizer decides to pre-compute GHD
// bags — trading some communication and pre-computing for a much smaller
// Leapfrog. The example prints the chosen plans and the resulting
// cost breakdowns, then runs an ad-hoc pattern written in query syntax.
package main

import (
	"fmt"
	"log"

	"adj"
)

func main() {
	edges := adj.GenerateGraph("LJ", 0.1)
	fmt.Printf("social graph: %d edges\n\n", edges.Len())

	for _, qn := range []string{"Q4", "Q5", "Q6"} {
		q := adj.CatalogQuery(qn)
		fmt.Println("query:", q)

		plan, err := adj.Explain(q, edges, adj.Options{Workers: 8, Samples: 400, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("plan: ", plan)

		rep, err := adj.Count(q, edges, adj.Options{Workers: 8, Samples: 400, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matches=%d  opt=%.3fs pre=%.3fs comm=%.3fs comp=%.3fs\n\n",
			rep.Results, rep.Optimization, rep.PreComputing, rep.Communication, rep.Computation)
	}

	// Ad-hoc pattern: a "diamond" with an apex — written directly in the
	// paper's query notation and run over two different relations.
	fmt.Println("--- ad-hoc query over a custom database ---")
	q, err := adj.ParseQuery("Diamond :- Follows(a,b) ⋈ Follows2(a,c) ⋈ Likes(b,d) ⋈ Likes2(c,d)")
	if err != nil {
		log.Fatal(err)
	}
	follows := adj.GenerateGraph("WB", 0.05)
	likes := adj.GenerateGraph("AS", 0.05)
	db := adj.Database{
		"Follows": follows, "Follows2": follows,
		"Likes": likes, "Likes2": likes,
	}
	rep, err := adj.Run("ADJ", q, db, adj.Options{Workers: 4, Samples: 300, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -> %d matches in %.3fs\n", q, rep.Results, rep.Total())
}
