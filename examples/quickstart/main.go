// Quickstart: count triangles in a synthetic LiveJournal-like social graph
// with ADJ on a simulated 8-worker cluster, and read the cost breakdown.
package main

import (
	"fmt"
	"log"

	"adj"
)

func main() {
	// A deterministic synthetic analogue of the paper's LJ dataset at 1/10
	// of the benchmark scale (≈7k edges) — instant to generate.
	edges := adj.GenerateGraph("LJ", 0.1)
	fmt.Printf("graph: %d edges\n", edges.Len())

	// Q1 is the triangle query from the paper's catalog:
	// Q1 :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c), every atom bound to the graph.
	q := adj.CatalogQuery("Q1")
	fmt.Println("query:", q)

	report, err := adj.Count(q, edges, adj.Options{
		Workers: 8,
		Samples: 500,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("triangles: %d\n", report.Results)
	fmt.Printf("plan:      %s\n", report.Plan)
	fmt.Printf("cost:      optimize=%.3fs precompute=%.3fs comm=%.3fs compute=%.3fs\n",
		report.Optimization, report.PreComputing, report.Communication, report.Computation)
	fmt.Printf("shuffled:  %d tuple copies, %d bytes\n", report.TuplesShuffled, report.BytesShuffled)
}
