// Quickstart: count triangles in a synthetic LiveJournal-like social graph
// with ADJ on a resident 8-worker session, read the cost breakdown, then
// run the same prepared query again — warm, with zero shuffle-side trie
// builds — and stream its results run by run.
package main

import (
	"context"
	"fmt"
	"log"

	"adj"
)

func main() {
	// A deterministic synthetic analogue of the paper's LJ dataset at 1/10
	// of the benchmark scale (≈7k edges) — instant to generate.
	edges := adj.GenerateGraph("LJ", 0.1)
	fmt.Printf("graph: %d edges\n", edges.Len())

	// A Session is the serving shape: a resident worker pool answering a
	// stream of queries over registered relations.
	sess, err := adj.Open(adj.Options{Workers: 8, Samples: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Register("edges", edges); err != nil {
		log.Fatal(err)
	}

	// Q1 is the triangle query from the paper's catalog:
	// Q1 :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c), every atom bound to the graph.
	// Prepare pays sampling and plan selection once.
	q := adj.CatalogQuery("Q1")
	fmt.Println("query:", q)
	pq, err := sess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		log.Fatal(err)
	}

	// Cold execution: HCube shuffle + block-trie builds, published to the
	// session's content-keyed trie store.
	res, err := pq.Exec(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report()
	fmt.Printf("triangles: %d\n", res.Count())
	fmt.Printf("plan:      %s (prepared in %.3fs)\n", rep.Plan, pq.PlanSeconds())
	fmt.Printf("cost:      precompute=%.3fs comm=%.3fs compute=%.3fs\n",
		rep.PreComputing, rep.Communication, rep.Computation)
	fmt.Printf("shuffled:  %d tuple copies, %d bytes; %d block tries built\n",
		rep.TuplesShuffled, rep.BytesShuffled, rep.TrieBuilds)

	// Warm execution: the relation content is unchanged, so the shuffle is
	// skipped entirely and every block trie is adopted from the store.
	res, err = pq.Exec(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	rep = res.Report()
	fmt.Printf("warm run:  %d triangles, %d tuples shuffled, %d tries built, %d cache hits\n",
		res.Count(), rep.TuplesShuffled, rep.TrieBuilds, rep.TrieCacheHits)

	// Results stream as prefix-replicated runs: one (a, b) binding plus the
	// run of all c values completing it — no row-major materialization.
	var runs int
	for {
		_, _, ok := res.NextRun()
		if !ok {
			break
		}
		runs++
	}
	fmt.Printf("streamed:  %d results in %d runs\n", res.Count(), runs)
}
