// Optimizer tour: a walk through every stage of ADJ's planner on the
// paper's running example (Eq. 2 / Fig. 2 / Fig. 5) — the hypergraph, its
// optimal hypertree decomposition, valid traversal and attribute orders,
// sampling-based cardinality estimates, and the final co-optimized plan.
// This example reaches into the library's internal packages (it lives in
// the same module) to show the machinery the public API drives, and closes
// with where that planning cost lives in the public Session API: paid once
// at Prepare, amortized over every Exec.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"adj"
	"adj/internal/costmodel"
	"adj/internal/ghd"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/relation"
	"adj/internal/sampling"
)

func main() {
	// The paper's running example: Q(a,b,c,d,e) over five relations
	// (Eq. 2), with a random database standing in for Fig. 2's toy one.
	q := hypergraph.PaperExample()
	fmt.Println("query:     ", q)

	rng := rand.New(rand.NewSource(42))
	db := hypergraph.Database{}
	for _, atom := range q.Atoms {
		r := relation.New(atom.Name, atom.Attrs...)
		for i := 0; i < 400; i++ {
			row := make([]relation.Value, len(atom.Attrs))
			for j := range row {
				row[j] = rng.Int63n(40)
			}
			r.AppendTuple(row)
		}
		db[atom.Name] = r.SortDedup()
	}
	rels, err := q.Bind(db)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 — hypergraph and GHD (§III-A, Fig. 5): bags become the only
	// candidate pre-computed relations.
	d, err := ghd.Decompose(q, ghd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- hypertree decomposition ---")
	fmt.Println(d)

	// Stage 2 — the reduced order space: traversal orders with connected
	// prefixes, and the valid attribute orders they induce.
	fmt.Println("\n--- order space ---")
	tr := d.TraversalOrders()
	fmt.Printf("valid traversal orders: %v\n", tr)
	valid := d.ValidAttrOrders()
	all := ghd.AllAttrOrders(q.Attrs())
	fmt.Printf("attribute orders: %d valid of %d total (%.0f%% pruned)\n",
		len(valid), len(all), 100*(1-float64(len(valid))/float64(len(all))))

	// Stage 3 — sampling-based cardinality estimation (§IV).
	fmt.Println("\n--- sampling (§IV) ---")
	order := d.AttrOrderFor(tr[0])
	est, err := sampling.EstimateCardinality(rels, order, sampling.Config{Samples: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order %v: |val(%s)|=%d  estimated |T_i| per level: ", order, order[0], est.ValA)
	for _, c := range est.LevelCounts {
		fmt.Printf("%.0f ", c)
	}
	fmt.Printf("\nestimated |Q| = %.0f   (k=%d samples in %.3fs)\n",
		est.Cardinality, est.Samples, est.Seconds)
	fmt.Printf("Hoeffding: %d samples give error ≤ 10%% of max with 95%% confidence\n",
		sampling.SampleSize(0.1, 0.05))

	// Stage 4 — Alg. 2: reverse-greedy co-optimization.
	fmt.Println("\n--- co-optimization (Alg. 2) ---")
	opt, err := optimizer.New(q, rels, optimizer.Options{
		Params:  costmodel.DefaultParams(8),
		Samples: 1500,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := opt.CoOptimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-opt plan:  ", plan)
	cf, err := opt.CommunicationFirst()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("comm-first:   ", cf)
	ex, err := opt.ExhaustivePlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive:    %s\n", ex)
	fmt.Printf("\ngreedy est %.4fs vs exhaustive est %.4fs (Alg. 2 quality check)\n",
		plan.Est.Total(), ex.Est.Total())

	// Stage 5 — where planning lives in the public API: Session.Prepare
	// runs exactly this pipeline once; every Exec reuses the cached plan
	// (and, warm, the published block tries).
	fmt.Println("\n--- the same planning through the Session API ---")
	sess, err := adj.Open(adj.Options{Workers: 8, Samples: 1500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RegisterDatabase(adj.Database(db)); err != nil {
		log.Fatal(err)
	}
	pq, err := sess.Prepare("ADJ", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared plan: %s\n", pq.Plan())
	for i := 0; i < 2; i++ {
		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report()
		fmt.Printf("exec %d: |Q|=%d, optimization charged %.4fs, tries built %d\n",
			i+1, res.Count(), rep.Optimization, rep.TrieBuilds)
	}
	fmt.Printf("planning paid once at Prepare: %.4fs\n", pq.PlanSeconds())
}
