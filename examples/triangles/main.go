// Triangle counting at scale: the workload from the paper's introduction
// (finding triangles and complex patterns in graphs). This example runs the
// triangle query with all five engines over a skewed web graph — all on one
// session, so every engine's prepared query executes against the same
// registered relation — shows why one-round engines shuffle orders of
// magnitude less than multi-round ones, then scales ADJ from 1 to 16
// workers and finishes with the repeated-query case the Session API is
// built for.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"adj"
)

func main() {
	edges := adj.GenerateGraph("WB", 0.25) // web-BerkStan analogue
	q := adj.CatalogQuery("Q1")
	fmt.Printf("counting triangles on %d edges\n\n", edges.Len())

	fmt.Println("--- engine comparison (4 workers, one session) ---")
	sess, err := adj.Open(adj.Options{Workers: 4, Samples: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Register("edges", edges); err != nil {
		log.Fatal(err)
	}
	for _, name := range adj.EngineNames() {
		pq, err := sess.PrepareGraph(name, q, "edges")
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rep := res.Report()
		status := fmt.Sprintf("%d triangles", res.Count())
		if rep.Failed {
			status = "FAILED: " + rep.FailReason
		}
		fmt.Printf("%-13s total=%7.3fs shuffled=%9d tuples   %s\n",
			name, rep.Total(), rep.TuplesShuffled, status)
	}
	sess.Close()

	fmt.Println("\n--- ADJ scaling (simulated workers) ---")
	var t1 float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		rep, err := adj.Count(q, edges, adj.Options{Workers: n, Samples: 300, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		exec := rep.PreComputing + rep.Communication + rep.Computation
		if n == 1 {
			t1 = exec
		}
		speedup := 0.0
		if exec > 0 {
			speedup = t1 / exec
		}
		fmt.Printf("workers=%2d exec=%7.4fs speedup=%.2fx\n", n, exec, speedup)
	}

	// The serving case: the same query stream hitting a resident session.
	// Execution 1 is cold; the rest adopt the published block tries.
	fmt.Println("\n--- repeated queries on a resident session ---")
	sess, err = adj.Open(adj.Options{Workers: 8, Samples: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Register("edges", edges); err != nil {
		log.Fatal(err)
	}
	pq, err := sess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report()
		fmt.Printf("exec %d: %d triangles in %7.4fs wall — %d tuples shuffled, %d tries built, %d cache hits\n",
			i+1, res.Count(), time.Since(t0).Seconds(),
			rep.TuplesShuffled, rep.TrieBuilds, rep.TrieCacheHits)
	}
}
