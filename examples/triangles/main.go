// Triangle counting at scale: the workload from the paper's introduction
// (finding triangles and complex patterns in graphs). This example runs the
// triangle query with all five engines over a skewed web graph and shows
// why one-round engines shuffle orders of magnitude less than multi-round
// ones, then scales ADJ from 1 to 16 workers.
package main

import (
	"fmt"
	"log"

	"adj"
)

func main() {
	edges := adj.GenerateGraph("WB", 0.25) // web-BerkStan analogue
	q := adj.CatalogQuery("Q1")
	fmt.Printf("counting triangles on %d edges\n\n", edges.Len())

	fmt.Println("--- engine comparison (4 workers) ---")
	for _, name := range adj.EngineNames() {
		rep, err := adj.RunGraph(name, q, edges, adj.Options{Workers: 4, Samples: 300, Seed: 7})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		status := fmt.Sprintf("%d triangles", rep.Results)
		if rep.Failed {
			status = "FAILED: " + rep.FailReason
		}
		fmt.Printf("%-13s total=%7.3fs shuffled=%9d tuples   %s\n",
			name, rep.Total(), rep.TuplesShuffled, status)
	}

	fmt.Println("\n--- ADJ scaling (simulated workers) ---")
	var t1 float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		rep, err := adj.Count(q, edges, adj.Options{Workers: n, Samples: 300, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		exec := rep.PreComputing + rep.Communication + rep.Computation
		if n == 1 {
			t1 = exec
		}
		speedup := 0.0
		if exec > 0 {
			speedup = t1 / exec
		}
		fmt.Printf("workers=%2d exec=%7.4fs speedup=%.2fx\n", n, exec, speedup)
	}
}
