package adj

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSessionConcurrentExecEquivalence is the serving tier's correctness
// suite: N goroutines hammer mixed prepared queries across all six
// engines on one session's cluster pool, and every concurrent result must
// match its sequential reference byte-for-byte. Run under -race in CI;
// the goroutine count must settle after Close.
func TestSessionConcurrentExecEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := randomEdges(t, rng, 400, 50)
	before := runtime.NumGoroutine()

	s, err := Open(Options{Workers: 3, Samples: 60, Seed: 1, Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}

	queries := []string{"Q1", "Q2"}
	type prepared struct {
		pq   *PreparedQuery
		want []byte // sequential reference, sorted encoding
		n    int64
	}
	var preps []prepared
	for _, eng := range AllEngineNames() {
		for _, qn := range queries {
			pq, err := s.PrepareGraph(eng, CatalogQuery(qn), "edges")
			if err != nil {
				t.Fatalf("prepare %s/%s: %v", eng, qn, err)
			}
			res, err := pq.Exec(context.Background())
			if err != nil {
				t.Fatalf("sequential %s/%s: %v", eng, qn, err)
			}
			preps = append(preps, prepared{pq, sortedBytes(t, res.Rows()), res.Count()})
		}
	}

	const goroutines, execsEach = 6, 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < execsEach; i++ {
				p := preps[(g+i*goroutines)%len(preps)]
				res, err := p.pq.Exec(context.Background())
				if err != nil {
					errc <- err
					return
				}
				if res.Count() != p.n {
					t.Errorf("%s: concurrent count %d, sequential %d",
						p.pq.Engine(), res.Count(), p.n)
					return
				}
				if got := sortedBytes(t, res.Rows()); !bytes.Equal(got, p.want) {
					t.Errorf("%s: concurrent output differs from sequential reference",
						p.pq.Engine())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent exec: %v", err)
	}

	st := s.AdmissionStats()
	if st.Admitted != int64(len(preps)+goroutines*execsEach) {
		t.Fatalf("Admitted = %d, want %d", st.Admitted, len(preps)+goroutines*execsEach)
	}
	if st.InFlight != 0 || st.Depth != 0 {
		t.Fatalf("controller not drained: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitForGoroutines(t, before)
}

// TestSessionOverloadShedding drives the graceful-degradation contract: a
// bulk flood through a tight admission config must be shed with typed
// errors while the interactive trickle completes, and the pool must stay
// fully healthy afterward (warm store intact, goroutines settled).
func TestSessionOverloadShedding(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	edges := randomEdges(t, rng, 400, 50)
	before := runtime.NumGoroutine()

	s, err := Open(Options{
		Workers: 3, Samples: 60, Seed: 1,
		Admission: AdmissionConfig{MaxConcurrent: 1, MaxQueue: 16, ShedQueue: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the store so post-overload health is observable (TrieBuilds==0).
	ref, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatal(err)
	}

	// Bulk flood: everything beyond the in-flight slot hits the ShedQueue
	// watermark. Interactive trickle: must all complete.
	const bulks, interactives = 12, 4
	var bulkOK, bulkShed, untyped int64
	var wg sync.WaitGroup
	for i := 0; i < bulks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pq.Exec(context.Background(), CountOnly(), WithClass(Bulk))
			switch {
			case err == nil:
				atomic.AddInt64(&bulkOK, 1)
			case errors.Is(err, ErrOverloaded):
				var oe *OverloadError
				if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
					atomic.AddInt64(&untyped, 1)
					return
				}
				atomic.AddInt64(&bulkShed, 1)
			default:
				atomic.AddInt64(&untyped, 1)
			}
		}()
	}
	interErr := make(chan error, interactives)
	for i := 0; i < interactives; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := pq.Exec(ctx, CountOnly())
			if err != nil {
				interErr <- err
				return
			}
			if res.Count() != ref.Count() {
				t.Errorf("interactive count %d under load, want %d", res.Count(), ref.Count())
			}
		}()
	}
	wg.Wait()
	close(interErr)
	for err := range interErr {
		t.Fatalf("interactive request failed under bulk flood: %v", err)
	}
	if untyped > 0 {
		t.Fatalf("%d rejections were not typed OverloadErrors", untyped)
	}
	if bulkShed == 0 {
		t.Fatalf("no bulk requests shed (ok=%d) — watermark never tripped", bulkOK)
	}
	st := s.AdmissionStats()
	if st.Shed != bulkShed {
		t.Fatalf("Stats.Shed = %d, observed %d", st.Shed, bulkShed)
	}

	// Fail-safe: the pool is fully healthy after the storm — the next
	// execution still runs warm out of the untouched store.
	res, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatalf("exec after overload: %v", err)
	}
	if res.Count() != ref.Count() {
		t.Fatalf("post-overload count = %d, want %d", res.Count(), ref.Count())
	}
	if rep := res.Report(); rep.TrieBuilds != 0 {
		t.Fatalf("store lost its warmth across the overload: TrieBuilds = %d", rep.TrieBuilds)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, before)
}

// TestSessionDeadlineMidQueue is the regression for deadline-aware queue
// waits: a request whose context expires while it waits behind a slow
// execution must abort with context.DeadlineExceeded (not hang, not
// return untyped), and the pool must come back healthy.
func TestSessionDeadlineMidQueue(t *testing.T) {
	edges := GenerateGraph("LJ", 0.3)
	s, err := Open(Options{Workers: 4, Samples: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	slow, err := s.PrepareGraph("ADJ", CatalogQuery("Q5"), "edges")
	if err != nil {
		t.Fatal(err)
	}

	hold := make(chan error, 1)
	go func() {
		_, err := slow.Exec(context.Background(), CountOnly())
		hold <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow exec take the slot

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = slow.Exec(ctx, CountOnly())
	if err == nil {
		t.Fatal("queued exec with tiny deadline succeeded — expected expiry" +
			" (slow exec finished too fast for the test premise)")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-queue expiry: err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("expired request held the queue %v", waited)
	}
	if err := <-hold; err != nil {
		t.Fatalf("slot-holding exec failed: %v", err)
	}
	// The expiry left no residue: the next unbounded exec completes.
	if _, err := slow.Exec(context.Background(), CountOnly()); err != nil {
		t.Fatalf("exec after mid-queue expiry: %v", err)
	}
}

// TestSessionDeadlineMidExecution verifies the deadline threads into the
// running phases themselves — shuffle waits included: a deadline that
// fires mid-run aborts the execution with context.DeadlineExceeded,
// promptly and without leaking goroutines.
func TestSessionDeadlineMidExecution(t *testing.T) {
	edges := GenerateGraph("LJ", 0.3)
	s, err := Open(Options{Workers: 4, Samples: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q5"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := pq.Exec(ctx, CountOnly())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Log("execution finished before the deadline took effect")
		} else if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mid-execution expiry: err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("expired execution did not return")
	}
	waitForGoroutines(t, before)
	// The borrowed cluster went back healthy.
	if _, err := pq.Exec(context.Background(), CountOnly()); err != nil {
		t.Fatalf("exec after mid-execution expiry: %v", err)
	}
}

// TestSessionCloseIdempotent: repeat Closes return nil without re-running
// teardown, and every operation on the closed session fails with the
// stable ErrSessionClosed.
func TestSessionCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	edges := randomEdges(t, rng, 200, 30)
	s, err := Open(Options{Workers: 2, Samples: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("repeat close %d: %v", i, err)
		}
	}
	if _, err := pq.Exec(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Exec after close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Prepare("ADJ", CatalogQuery("Q1")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Prepare after close: err = %v, want ErrSessionClosed", err)
	}
	if err := s.Register("more", edges); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Register after close: err = %v, want ErrSessionClosed", err)
	}
}

// TestSessionCloseWaitsForInFlight: Close during an execution waits for
// the borrowed cluster to come home instead of pulling it out from under
// the run.
func TestSessionCloseWaitsForInFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	edges := randomEdges(t, rng, 400, 50)
	s, err := Open(Options{Workers: 3, Samples: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	execDone := make(chan error, 1)
	var execFinished atomic.Bool
	go func() {
		_, err := pq.Exec(context.Background(), CountOnly())
		execFinished.Store(true)
		execDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("close with in-flight exec: %v", err)
	}
	if !execFinished.Load() {
		t.Fatal("Close returned before the in-flight execution finished")
	}
	if err := <-execDone; err != nil && !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("in-flight exec during close: %v", err)
	}
}

// TestServerSharedStoreWarm: two sessions of one Server registering the
// same content warm each other — session B's first execution adopts the
// tries session A built (TrieBuilds == 0), and ServerStats sees both.
func TestServerSharedStoreWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	edges := randomEdges(t, rng, 400, 50)
	srv := NewServer(ServerOptions{Admission: AdmissionConfig{MaxConcurrent: 2}})
	defer srv.Close()

	opts := Options{Workers: 3, Samples: 60, Seed: 1}
	sA, err := srv.OpenShared(opts)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := srv.OpenShared(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{sA, sB} {
		if err := s.Register("edges", edges); err != nil {
			t.Fatal(err)
		}
	}
	pqA, err := sA.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	pqB, err := sB.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}

	cold, err := pqA.Exec(context.Background(), CountOnly(), WithTenant("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report().TrieBuilds == 0 {
		t.Fatal("session A's cold exec built no tries (premise broken)")
	}
	warm, err := pqB.Exec(context.Background(), CountOnly(), WithTenant("bob"))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Count() != cold.Count() {
		t.Fatalf("cross-session counts differ: %d vs %d", warm.Count(), cold.Count())
	}
	rep := warm.Report()
	if rep.TrieBuilds != 0 || rep.TrieCacheHits == 0 {
		t.Fatalf("session B's first exec was not warmed by A: builds=%d hits=%d",
			rep.TrieBuilds, rep.TrieCacheHits)
	}

	st := srv.Stats()
	if st.Sessions != 2 {
		t.Fatalf("Sessions = %d, want 2", st.Sessions)
	}
	if st.Admission.Admitted != 2 {
		t.Fatalf("Admitted = %d, want 2", st.Admission.Admitted)
	}
	if st.Store.Blocks == 0 {
		t.Fatal("shared store snapshot shows no resident blocks")
	}
	if _, ok := st.Admission.Tenants["alice"]; !ok {
		t.Fatalf("tenant accounting missing alice: %+v", st.Admission.Tenants)
	}

	// Server.Close closes the sessions it still owns.
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Sessions; got != 1 {
		t.Fatalf("Sessions after sA.Close = %d, want 1", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pqB.Exec(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("exec on server-closed session: err = %v, want ErrSessionClosed", err)
	}
	if _, err := srv.OpenShared(opts); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("OpenShared on closed server: err = %v, want ErrSessionClosed", err)
	}
}

// TestSessionExecReportsAdmission: the report carries the serving-tier
// observability fields.
func TestSessionExecReportsAdmission(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	edges := randomEdges(t, rng, 200, 30)
	s, err := Open(Options{Workers: 2, Samples: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report().AdmissionClass; got != "interactive" {
		t.Fatalf("default AdmissionClass = %q, want interactive", got)
	}
	if res.Report().QueueSeconds < 0 {
		t.Fatalf("QueueSeconds = %v", res.Report().QueueSeconds)
	}
	res, err = pq.Exec(context.Background(), CountOnly(), WithClass(Bulk))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report().AdmissionClass; got != "bulk" {
		t.Fatalf("bulk AdmissionClass = %q", got)
	}
}

// TestSessionTenantBudgetExec: a tenant that burned its byte budget is
// refused with ErrOverloaded end-to-end through Exec, while other tenants
// proceed.
func TestSessionTenantBudgetExec(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	edges := randomEdges(t, rng, 400, 50)
	s, err := Open(Options{
		Workers: 3, Samples: 60, Seed: 1,
		Admission: AdmissionConfig{
			MaxConcurrent: 1,
			TenantBytes:   1, // any shuffle at all busts the budget
			BudgetWindow:  time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Exec(context.Background(), CountOnly(), WithTenant("greedy")); err != nil {
		t.Fatalf("first exec within budget: %v", err)
	}
	_, err = pq.Exec(context.Background(), CountOnly(), WithTenant("greedy"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget tenant: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "tenant bytes budget" {
		t.Fatalf("overload detail: %+v (err %v)", oe, err)
	}
	// Another tenant — and the unaccounted default — still execute.
	if _, err := pq.Exec(context.Background(), CountOnly(), WithTenant("frugal")); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if _, err := pq.Exec(context.Background(), CountOnly()); err != nil {
		t.Fatalf("unaccounted exec refused: %v", err)
	}
}
