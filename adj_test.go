package adj

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	edges := GenerateGraph("WB", 0.05)
	q := CatalogQuery("Q1")
	rep, err := Count(q, edges, Options{Workers: 4, Samples: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("failed: %s", rep.FailReason)
	}
	if rep.Results <= 0 {
		t.Fatal("expected triangles in WB")
	}
}

func TestRunAdHocQuery(t *testing.T) {
	q, err := ParseQuery("Qt :- R(a,b) ⋈ S(b,c) ⋈ T(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, rows [][]Value) *Relation {
		r := NewRelation(name, "x", "y")
		for _, row := range rows {
			r.Append(row...)
		}
		return r
	}
	e := [][]Value{{1, 2}, {2, 3}, {1, 3}}
	db := Database{"R": mk("R", e), "S": mk("S", e), "T": mk("T", e)}
	rep, err := Run("ADJ", q, db, Options{Workers: 2, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != 1 {
		t.Fatalf("triangle count=%d want 1", rep.Results)
	}
}

func TestAllEnginesViaPublicAPI(t *testing.T) {
	edges := GenerateGraph("WB", 0.03)
	q := CatalogQuery("Q1")
	var want int64 = -1
	for _, name := range EngineNames() {
		rep, err := RunGraph(name, q, edges, Options{Workers: 3, Samples: 100, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Failed {
			t.Fatalf("%s failed: %s", name, rep.FailReason)
		}
		if want < 0 {
			want = rep.Results
		} else if rep.Results != want {
			t.Fatalf("%s: %d results, others got %d", name, rep.Results, want)
		}
	}
}

func TestRunUnknownEngine(t *testing.T) {
	q := CatalogQuery("Q1")
	if _, err := Run("nope", q, Database{}, Options{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := RunGraph("nope", q, NewRelation("E", "s", "d"), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunMissingRelation(t *testing.T) {
	q := CatalogQuery("Q1")
	if _, err := Run("ADJ", q, Database{}, Options{}); err == nil {
		t.Fatal("expected bind error")
	}
}

func TestExplain(t *testing.T) {
	edges := GenerateGraph("WB", 0.03)
	plan, err := Explain(CatalogQuery("Q5"), edges, Options{Workers: 4, Samples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ord=") {
		t.Fatalf("plan missing order: %s", plan)
	}
}

func TestCollectOutput(t *testing.T) {
	edges := GenerateGraph("WB", 0.02)
	q := CatalogQuery("Q1")
	rep, err := Count(q, edges, Options{Workers: 2, Samples: 50, CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output == nil || int64(rep.Output.Len()) != rep.Results {
		t.Fatalf("output len %v vs results %d", rep.Output, rep.Results)
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 || names[0] != "WB" || names[5] != "OK" {
		t.Fatalf("names=%v", names)
	}
	for _, n := range names {
		if GenerateGraph(n, 0.02).Len() == 0 {
			t.Fatalf("%s empty", n)
		}
	}
}

func TestCountAcyclic(t *testing.T) {
	q, err := ParseQuery("Qp :- R(a,b) ⋈ S(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation("R", "x", "y")
	r.Append(1, 2)
	r.Append(3, 2)
	s := NewRelation("S", "x", "y")
	s.Append(2, 7)
	s.Append(2, 8)
	n, err := CountAcyclic(q, Database{"R": r, "S": s})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count=%d want 4", n)
	}
	// Cyclic queries must be rejected.
	if _, err := CountAcyclic(CatalogQuery("Q1"), Database{
		"R1": r, "R2": r, "R3": r,
	}); err == nil {
		t.Fatal("expected error for cyclic query")
	}
}
