package adj

import (
	"sync"

	"adj/internal/admission"
	"adj/internal/blockcache"
)

// Server is the multi-session serving handle: one content-keyed trie
// store and one admission controller shared by every session opened
// through it. Sessions of a server warm each other's tries — the store is
// keyed by relation content, so tenant A's cold run over a graph makes
// tenant B's first run over the same graph warm — and compete under one
// global admission gate, so overload protection holds across the whole
// process, not per session.
//
//	srv := adj.NewServer(adj.ServerOptions{
//		Admission: adj.AdmissionConfig{MaxConcurrent: 4},
//	})
//	defer srv.Close()
//	sess, _ := srv.OpenShared(adj.Options{Workers: 8})
type Server struct {
	mu       sync.Mutex
	store    *blockcache.Store
	ctrl     *admission.Controller
	sessions map[*Session]struct{}
	closed   bool
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// TrieStoreBytes bounds the shared block-trie store. 0 picks the
	// default (256 MiB); negative disables cross-query reuse for every
	// session of the server.
	TrieStoreBytes int64
	// Admission tunes the server-wide admission controller; zero-value
	// fields take the controller defaults (one slot, a generous queue).
	Admission AdmissionConfig
}

// NewServer creates a serving handle. Close it when done; Close also
// closes every session still open through it.
func NewServer(opts ServerOptions) *Server {
	var store *blockcache.Store
	switch {
	case opts.TrieStoreBytes < 0:
		// reuse disabled server-wide
	case opts.TrieStoreBytes == 0:
		store = blockcache.NewStore(defaultTrieStoreBytes)
	default:
		store = blockcache.NewStore(opts.TrieStoreBytes)
	}
	return &Server{
		store:    store,
		ctrl:     admission.NewController(opts.Admission),
		sessions: make(map[*Session]struct{}),
	}
}

// OpenShared opens a session on the server: its executions pass the
// server's admission controller and publish into / adopt from the
// server's shared trie store. opts.TrieStoreBytes and opts.Admission are
// ignored (the server owns both); opts.Concurrency sizes the session's
// own cluster pool and defaults to the server's concurrency limit.
func (srv *Server) OpenShared(opts Options) (*Session, error) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, ErrSessionClosed
	}
	s := newSession(opts, srv.store, srv.ctrl, srv)
	srv.sessions[s] = struct{}{}
	return s, nil
}

// forget detaches a session that closed itself.
func (srv *Server) forget(s *Session) {
	srv.mu.Lock()
	delete(srv.sessions, s)
	srv.mu.Unlock()
}

// Close closes every open session of the server (waiting for their
// in-flight executions) and marks the server closed; later OpenShared
// calls fail. Idempotent.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	open := make([]*Session, 0, len(srv.sessions))
	for s := range srv.sessions {
		open = append(open, s)
	}
	srv.mu.Unlock()
	var err error
	for _, s := range open {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// ServerStats is a point-in-time view of the serving tier: session count,
// the shared admission controller (depth, in-flight, admitted / shed /
// rejected counters, latency EWMAs, per-tenant budget consumption) and
// the shared trie store (resident bytes, hit/miss/eviction counters).
type ServerStats struct {
	// Sessions is the number of sessions currently open on the server.
	Sessions int
	// Admission snapshots the shared admission controller.
	Admission AdmissionStats
	// Store snapshots the shared block-trie store.
	Store TrieStoreStats
}

// Stats snapshots the server.
func (srv *Server) Stats() ServerStats {
	srv.mu.Lock()
	n := len(srv.sessions)
	srv.mu.Unlock()
	return ServerStats{
		Sessions:  n,
		Admission: srv.ctrl.Stats(),
		Store:     srv.store.Stats(),
	}
}
