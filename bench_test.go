package adj_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§VII). Each BenchmarkFigXX / BenchmarkTableXX runs the
// corresponding experiment at a laptop scale and reports the headline
// numbers as custom metrics; `cmd/experiments` prints the full rows.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig12 -benchtime=1x
//
// Scale note: ADJBENCH_SCALE (default 0.05) multiplies dataset sizes;
// see EXPERIMENTS.md for paper-vs-measured shape notes.

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"adj"
	"adj/internal/costmodel"
	"adj/internal/engine"
	"adj/internal/experiments"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/optimizer"
	"adj/internal/relation"
	"adj/internal/trie"
)

func benchScale() float64 {
	if s := os.Getenv("ADJBENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

func benchCfg() experiments.Config {
	return experiments.Config{
		Scale:   benchScale(),
		Workers: 8,
		Samples: 300,
		Seed:    1,
		Budget:  20_000_000,
	}
}

// runExperiment wraps one experiment as a benchmark body.
func runExperiment(b *testing.B, fn func(experiments.Config) (experiments.Result, error)) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fn(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkTable01_Datasets(b *testing.B) {
	res := runExperiment(b, experiments.Table1)
	b.ReportMetric(res.Rows[5].Values["Edges"], "OK-edges")
}

func BenchmarkFig01a_OneRoundVsMultiRound(b *testing.B) {
	res := runExperiment(b, experiments.Fig1a)
	r := res.Rows[0].Values
	if r["OneRound"] > 0 {
		b.ReportMetric(r["MultiRound"]/r["OneRound"], "multi/one-shuffle-ratio")
	}
}

func BenchmarkFig01b_CommFirstVsCoOpt(b *testing.B) {
	res := runExperiment(b, experiments.Fig1b)
	r := res.Rows[0].Values
	co := r["CO-Pre+Comm"] + r["CO-Comp"]
	cf := r["CF-Comm"] + r["CF-Comp"]
	if co > 0 {
		b.ReportMetric(cf/co, "commfirst/coopt-cost-ratio")
	}
}

func BenchmarkFig06_IntermediateTuples(b *testing.B) {
	res := runExperiment(b, experiments.Fig6)
	// Average share of the last two traversed nodes.
	var sum float64
	var n int
	for _, row := range res.Rows {
		if row.Values == nil {
			continue
		}
		sum += row.Values["nth"] + row.Values["(n-1)th"]
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "last2-share")
	}
}

func BenchmarkFig08_AttributeOrderPruning(b *testing.B) {
	res := runExperiment(b, experiments.Fig8)
	var ratioSum float64
	var n int
	for _, row := range res.Rows {
		if row.Values == nil || row.Values["Valid-Max"] == 0 {
			continue
		}
		ratioSum += row.Values["Invalid-Max"] / row.Values["Valid-Max"]
		n++
	}
	if n > 0 {
		b.ReportMetric(ratioSum/float64(n), "invalidmax/validmax")
	}
}

func BenchmarkFig09_HCubeImplementations(b *testing.B) {
	res := runExperiment(b, experiments.Fig9)
	var push, merge float64
	for _, row := range res.Rows {
		push += row.Values["Push-Comm"]
		merge += row.Values["Merge-Comm"]
	}
	if merge > 0 {
		b.ReportMetric(push/merge, "push/merge-comm-ratio")
	}
}

func BenchmarkFig10_SamplingAccuracy(b *testing.B) {
	res := runExperiment(b, experiments.Fig10)
	var worst float64 = 1
	for _, row := range res.Rows {
		if d, ok := row.Values["D@10000"]; ok && d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst-D@10000")
}

func BenchmarkFig11_Scalability(b *testing.B) {
	res := runExperiment(b, experiments.Fig11)
	var best float64
	for _, row := range res.Rows {
		if v, ok := row.Values["n=28"]; ok && v > best {
			best = v
		}
	}
	b.ReportMetric(best, "best-speedup@28")
}

func BenchmarkFig12ac_VaryingDataset(b *testing.B) {
	res := runExperiment(b, experiments.Fig12Datasets)
	adjWins := 0
	total := 0
	for _, row := range res.Rows {
		a, ok := row.Values["ADJ"]
		if !ok {
			continue
		}
		total++
		best := true
		for name, v := range row.Values {
			if name != "ADJ" && v < a {
				best = false
			}
		}
		if best {
			adjWins++
		}
	}
	if total > 0 {
		b.ReportMetric(float64(adjWins)/float64(total), "adj-win-rate")
	}
}

func BenchmarkFig12df_VaryingQuery(b *testing.B) {
	res := runExperiment(b, experiments.Fig12Queries)
	completions := 0
	for _, row := range res.Rows {
		if _, ok := row.Values["ADJ"]; ok {
			completions++
		}
	}
	b.ReportMetric(float64(completions)/float64(len(res.Rows)), "adj-completion-rate")
}

func benchTable(b *testing.B, fn func(experiments.Config) (experiments.Result, error)) {
	res := runExperiment(b, fn)
	var coTotal, cfTotal float64
	for _, row := range res.Rows {
		coTotal += row.Values["CO-Total"]
		cfTotal += row.Values["CF-Total"]
	}
	if coTotal > 0 {
		b.ReportMetric(cfTotal/coTotal, "commfirst/coopt-total-ratio")
	}
}

func BenchmarkTable02_CoOptVsCommFirst_AS(b *testing.B) { benchTable(b, experiments.Table2) }
func BenchmarkTable03_CoOptVsCommFirst_LJ(b *testing.B) { benchTable(b, experiments.Table3) }
func BenchmarkTable04_CoOptVsCommFirst_OK(b *testing.B) { benchTable(b, experiments.Table4) }

// --- Ablation benchmarks (DESIGN.md "Design choices to ablate") ---

// BenchmarkAblationOrders compares selecting an attribute order from the
// pruned valid space vs from all n! orders (planner cost, not join cost).
func BenchmarkAblationOrders(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	q := hypergraph.Get("Q5")
	rels := q.BindGraph(edges)
	o, err := optimizer.New(q, rels, optimizer.Options{
		Params: costmodel.DefaultParams(8), Samples: 200, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	valid := o.Decomp.ValidAttrOrders()
	b.Run("valid-sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o.ChooseOrder(valid)
		}
	})
	b.Run("all-sketch", func(b *testing.B) {
		all := allOrders(q)
		for i := 0; i < b.N; i++ {
			o.ChooseOrderSketch(all)
		}
	})
}

func allOrders(q hypergraph.Query) [][]string {
	attrs := q.Attrs()
	var out [][]string
	var rec func(cur []string, rest []string)
	rec = func(cur, rest []string) {
		if len(rest) == 0 {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]string(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, attrs)
	return out
}

// BenchmarkAblationOptimizer compares Alg. 2's greedy search against the
// exhaustive plan search over (C, traversal) pairs.
func BenchmarkAblationOptimizer(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	q := hypergraph.Get("Q6")
	rels := q.BindGraph(edges)
	newOpt := func() *optimizer.Optimizer {
		o, err := optimizer.New(q, rels, optimizer.Options{
			Params: costmodel.DefaultParams(8), Samples: 200, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := newOpt().CoOptimize(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := newOpt().ExhaustivePlan(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEstimator compares sampling-based and sketch-based
// cardinality estimates against the exact count (reported as D ratios).
func BenchmarkAblationEstimator(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	q := hypergraph.Get("Q5")
	rels := q.BindGraph(edges)
	order := q.Attrs()
	exact, err := leapfrog.Count(rels, order)
	if err != nil {
		b.Fatal(err)
	}
	o, err := optimizer.New(q, rels, optimizer.Options{
		Params: costmodel.DefaultParams(8), Samples: 2000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sampled, sketch float64
	for i := 0; i < b.N; i++ {
		sampled = o.SubsetSize(order)
		sketch = o.SketchPrefixEstimate(order)
	}
	if exact > 0 {
		b.ReportMetric(ratioD(sampled, float64(exact)), "D-sampling")
		b.ReportMetric(ratioD(sketch, float64(exact)), "D-sketch")
	}
}

func ratioD(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 1e9
	}
	if a > b {
		return a / b
	}
	return b / a
}

// BenchmarkAblationShuffle isolates Push vs Pull vs Merge end-to-end
// within HCubeJ.
func BenchmarkAblationShuffle(b *testing.B) {
	edges := adj.GenerateGraph("AS", benchScale())
	q := hypergraph.Get("Q2")
	rels := q.BindGraph(edges)
	for _, kind := range []hcube.Kind{hcube.Push, hcube.Pull, hcube.Merge} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := engine.Config{NumServers: 8, Samples: 100, Seed: 1}
				k := kind
				cfg.ShuffleKind = &k
				if _, err := engine.RunHCubeJ(q, rels, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the core kernels ---

func BenchmarkLeapfrogTriangleLJ(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	q := hypergraph.Get("Q1")
	rels := q.BindGraph(edges)
	order := q.Attrs()
	tries := leapfrog.BuildTries(rels, order)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := leapfrog.Join(tries, order, leapfrog.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieBuild(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Build(edges, []string{"src", "dst"})
	}
}

func BenchmarkTrieCodec(b *testing.B) {
	tr := trie.Build(adj.GenerateGraph("AS", benchScale()), []string{"src", "dst"})
	buf := trie.Encode(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trie.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := relation.New("R", "a", "b")
	s := relation.New("S", "b", "c")
	for i := 0; i < 20000; i++ {
		r.Append(rng.Int63n(5000), rng.Int63n(5000))
		s.Append(rng.Int63n(5000), rng.Int63n(5000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.HashJoin(r, s)
	}
}

func BenchmarkSamplingEstimate(b *testing.B) {
	edges := adj.GenerateGraph("LJ", benchScale())
	q := hypergraph.Get("Q4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adj.Explain(q, edges, adj.Options{Workers: 8, Samples: 500, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
